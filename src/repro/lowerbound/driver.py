"""The executable lower-bound argument (Lemmas 2–5, Theorem 2).

Given *any* candidate weak consensus algorithm (as a
:class:`~repro.protocols.base.ProtocolSpec`), the driver walks the paper's
proof as a concrete attack:

1. **Fault-free sanity** — the all-0 and all-1 executions must decide
   their proposals (Weak Validity + Termination); failures are immediate
   witnesses.
2. **Round-1 isolations** — run ``E_b^{G(1)}`` for both bits and both
   groups; in each, all correct processes must agree, and (Lemma 2) a
   majority of the isolated group must decide the correct processes' bit
   — otherwise the swap-omission construction is attempted to extract a
   witness.
3. **Lemma-3 consistency** — the four round-1 executions must share one
   correct-group decision ``d`` (they are pairwise mergeable).  On a
   mismatch, the two executions are *merged* (Algorithm 5) and the
   extraction runs inside the merged execution.
4. **Critical round** (Lemma 4) — with ``f = 1 - d``, scan
   ``E_f^{B(k)}`` for increasing ``k`` until the correct decision flips
   from ``d`` to ``f``; Lemma 2 is re-checked at every step.
5. **The final merge** (Lemma 5, Figure 2) — merge ``E_f^{B(R+1)}`` with
   ``E_f^{C(R)}``; group A's decision necessarily disagrees with the
   replayed majority of B or of C, and the extraction produces the
   witness.

Every produced witness is re-verified from scratch
(:func:`~repro.lowerbound.witnesses.verify_witness`).  If no witness is
found — e.g. because every extraction ran into the ``t/2``
receive-omission budget, which is exactly what ≥ ``t²/32``-message
algorithms buy themselves — the outcome reports the observed message
counts against the Lemma-1 floor.

**Execution reuse.**  The pipeline's cost is dominated by re-simulating
near-identical configurations: every ``E_b^{G(k)}`` shares its first
``k - 1`` rounds with the fault-free ``E_b``, and consecutive scan steps
``E_f^{B(k)}``, ``E_f^{B(k+1)}`` are *literally equal* whenever no
outside message targets ``B`` in round ``k`` (see
:func:`~repro.omission.isolation.quiescent_toward`).  The
:class:`ExecutionCache` exploits both: fault-free runs are checkpointed
per round (:class:`~repro.sim.engine.MachineCheckpointer`) so isolation
runs resume at their isolation round, and quiescent scan spans collapse
onto one simulation.  Both reuses produce bit-identical executions —
machines are deterministic — so witnesses and verdicts are unchanged;
the engine counters in :class:`AttackOutcome` report the savings.

**The mask kernel.**  The driver's adversaries are exactly the family
the bitmask kernel (:mod:`repro.sim.kernel`) compiles, so by default
(``kernel="auto"``) simulation runs over per-round integer bitmasks
instead of message objects: the fault-free run records a mask trace, the
Lemma-4 scan fans candidates out of its shared prefix via
:class:`~repro.sim.kernel.PrefixForker` (one machine deep-copy per
divergence round instead of one per round boundary), and §2 complexity
is popcount accumulation.  Traces materialize into bit-identical
:class:`~repro.sim.execution.Execution` records on demand, so every
downstream consumer — merges, swaps, witnesses, certificates — is
engine-agnostic.
"""

from __future__ import annotations

from contextlib import ExitStack, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.certify.format import Certificate
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import TelemetryBus
    from repro.worldlog.store import WorldLog

from repro.errors import ModelViolation, ReproError
from repro.lowerbound.bound import BoundComparison, weak_consensus_floor
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.lowerbound.partition import ABCPartition, canonical_partition
from repro.lowerbound.witnesses import (
    ViolationKind,
    ViolationWitness,
    verify_witness,
)
from repro.omission.isolation import isolate_group, quiescent_toward
from repro.omission.masks import compile_omissions
from repro.omission.merge import MergeSpec, merge
from repro.omission.swap import swap_omission_checked
from repro.parallel.profiling import (
    AttackProfile,
    PhaseTimer,
    ProfilingObserver,
)
from repro.protocols.base import ProtocolSpec
from repro.sim.engine import (
    EarlyStopPolicy,
    MachineCheckpointer,
    RoundObserver,
    object_counts,
    object_counts_delta,
)
from repro.sim.execution import Execution, check_execution, majority_decision
from repro.sim.kernel import (
    KernelTrace,
    PrefixForker,
    fork_kernel,
    no_faults_compiled,
    run_kernel,
)
from repro.sim.metrics import StreamingComplexity
from repro.sim.simulator import SimulationConfig, resume_execution
from repro.types import Bit, Payload, ProcessId, Round

_SpecKey = tuple[str, int, int, int]


@dataclass
class _CacheEntry:
    """One cached simulation: the trace, its §2 message count, and
    whether it ran to the configured horizon (early-stopped traces are
    valid for decision queries but not as witnesses or merge inputs)."""

    execution: Execution
    messages: int
    complete: bool


@dataclass
class ExecutionCache:
    """Cache of simulated executions keyed by (protocol, bit, adversary).

    The key triple is ``(spec key, proposal bit, adversary signature)``
    where the spec key is ``(name, n, t, rounds)`` and the signature is
    ``None`` for fault-free runs or ``(group, from_round)`` for the
    isolation adversaries of Definition 1 — the only adversary family
    the pipeline simulates.  A cache may be shared across drivers (and
    thus across partitions) attacking the same protocol.

    Besides exact hits, the cache performs two *semantic* reuses, both
    returning executions bit-identical to a fresh simulation:

    * **quiescent aliasing** — ``E_b^{G(k)}`` equals a cached
      ``E_b^{G(k')}`` when no outside message targets ``G`` between the
      two isolation rounds (:func:`~repro.omission.isolation.quiescent_toward`);
    * **beyond-horizon identity** — for ``k`` past the horizon the
      isolation never acts, so the fault-free behaviors are reused with
      the faulty set rewritten to ``G``.

    ``hits`` counts exact key hits, ``alias_hits`` the semantic reuses,
    ``misses`` actual simulations.

    Process-boundary note: ``_entries`` hold full execution traces,
    ``_checkpointers`` hold live machine deep-copies and
    ``_kernel_states`` hold live mask traces with their fork machinery —
    none is ever shipped across process boundaries.  A parallel sweep
    gives every worker its own cache and sends back *counters only* (see
    :class:`repro.parallel.jobs.CacheStats`), which the scheduler folds
    into one aggregate via :meth:`merge_stats`.
    """

    hits: int = 0
    alias_hits: int = 0
    misses: int = 0
    _entries: dict = field(default_factory=dict, repr=False)
    _checkpointers: dict = field(default_factory=dict, repr=False)
    _kernel_states: dict = field(default_factory=dict, repr=False)

    def merge_stats(self, other) -> None:
        """Fold another cache's *counters* into this one (counters only).

        ``other`` is anything exposing ``hits`` / ``alias_hits`` /
        ``misses`` integer attributes — a sibling :class:`ExecutionCache`
        or the picklable :class:`repro.parallel.jobs.CacheStats` a worker
        ships home.  Entries and checkpointers are deliberately *not*
        merged: traces and machine snapshots stay within the process that
        produced them.
        """
        self.hits += other.hits
        self.alias_hits += other.alias_hits
        self.misses += other.misses

    def lookup(self, key: tuple) -> _CacheEntry | None:
        """The entry stored under the exact ``key``, if any."""
        return self._entries.get(key)

    def store(self, key: tuple, entry: _CacheEntry) -> None:
        """Insert or replace the entry for ``key``."""
        self._entries[key] = entry

    def isolation_family(
        self,
        spec_key: _SpecKey,
        bit: Bit,
        group: frozenset[ProcessId],
    ) -> list[tuple[Round, _CacheEntry]]:
        """All cached ``(from_round, entry)`` isolations of ``group``."""
        family = []
        for (skey, kbit, sig), entry in self._entries.items():
            if (
                skey == spec_key
                and kbit == bit
                and sig is not None
                and sig[0] == group
            ):
                family.append((sig[1], entry))
        return family

    def checkpointer(
        self, spec_key: _SpecKey, bit: Bit
    ) -> MachineCheckpointer | None:
        """The fault-free run's checkpointer for ``bit``, if recorded."""
        return self._checkpointers.get((spec_key, bit))

    def store_checkpointer(
        self,
        spec_key: _SpecKey,
        bit: Bit,
        checkpointer: MachineCheckpointer,
    ) -> None:
        """Record the fault-free checkpointer for later resume calls."""
        self._checkpointers[(spec_key, bit)] = checkpointer

    def kernel_state(
        self, spec_key: _SpecKey, bit: Bit
    ) -> "tuple[KernelTrace, PrefixForker] | None":
        """The fault-free kernel trace and its forker, if recorded."""
        return self._kernel_states.get((spec_key, bit))

    def store_kernel_state(
        self,
        spec_key: _SpecKey,
        bit: Bit,
        state: "tuple[KernelTrace, PrefixForker]",
    ) -> None:
        """Record the mask-kernel analogue of the checkpointer: the
        fault-free trace (the shared prefix) plus the
        :class:`~repro.sim.kernel.PrefixForker` the Lemma-4 scan fans
        out of."""
        self._kernel_states[(spec_key, bit)] = state


@dataclass(frozen=True)
class AttackOutcome:
    """The result of running the lower-bound pipeline on one candidate.

    Attributes:
        protocol: the candidate's name.
        n, t: system parameters.
        partition: the (A, B, C) partition used.
        witness: a verified violation witness, or ``None``.
        bound: observed worst message count vs the ``t²/32`` floor.
        default_bit: the Lemma-3 common decision ``d`` (if reached).
        critical_round: the Lemma-4 round ``R`` (if reached).
        log: the pipeline's step-by-step narrative (including the engine
            round counters).
        rounds_simulated: rounds the engine actually simulated.
        rounds_baseline: rounds a reuse-free pipeline (one full-horizon
            simulation per distinct configuration) would have simulated.
        profile: wall-clock phase/round timings when profiling was
            requested (``None`` otherwise).  Excluded from equality:
            two runs of one attack agree on witnesses and verdicts but
            never on wall time.
        certificate: the portable v1 artifact packaging this outcome's
            claim (when certification was requested).  Excluded from
            equality like ``profile``: the certificate is derived
            evidence, and reuse-enabled and reuse-free runs of one
            attack may embed differently-labeled (yet equally valid)
            execution sets.
    """

    protocol: str
    n: int
    t: int
    partition: ABCPartition
    witness: ViolationWitness | None
    bound: BoundComparison
    default_bit: Payload | None = None
    critical_round: Round | None = None
    log: tuple[str, ...] = ()
    rounds_simulated: int = 0
    rounds_baseline: int = 0
    profile: AttackProfile | None = field(default=None, compare=False)
    certificate: "Certificate | None" = field(default=None, compare=False)

    @property
    def found_violation(self) -> bool:
        """Whether the candidate was broken."""
        return self.witness is not None

    def render(self, profile: bool = True) -> str:
        """A short report block.

        Args:
            profile: include the wall-clock profile block (callers that
                route timings to a diagnostic stream pass ``False`` and
                render ``self.profile`` separately).
        """
        lines = [
            f"attack on {self.protocol} (n={self.n}, t={self.t}; "
            f"{self.partition.describe()})",
            f"  {self.bound.render()}",
        ]
        if self.default_bit is not None:
            lines.append(f"  default bit d = {self.default_bit!r}")
        if self.critical_round is not None:
            lines.append(f"  critical round R = {self.critical_round}")
        if self.rounds_baseline:
            lines.append(
                f"  simulated {self.rounds_simulated} rounds "
                f"(baseline {self.rounds_baseline})"
            )
        if self.witness is not None:
            lines.append(f"  VIOLATION: {self.witness.summary()}")
        else:
            lines.append("  no violation found (bound respected)")
        if self.certificate is not None:
            lines.append(
                f"  certificate: schema v{self.certificate.schema}, "
                f"{len(self.certificate.execution_labels)} execution(s) "
                "embedded"
            )
        if profile and self.profile is not None:
            lines.extend(
                "  " + line for line in self.profile.render().splitlines()
            )
        return "\n".join(lines)


class _Found(Exception):
    """Internal: unwinds the pipeline when a witness is in hand."""

    def __init__(self, witness: ViolationWitness) -> None:
        super().__init__(witness.summary())
        self.witness = witness


@dataclass
class LowerBoundDriver:
    """Runs the Lemma 2–5 pipeline against one candidate algorithm.

    Attributes:
        spec: the candidate weak consensus algorithm.
        partition: the (A, B, C) split; defaults to
            :func:`~repro.lowerbound.partition.canonical_partition`.
        verify: re-verify any produced witness from scratch.
        check: validate every simulated trace against the model
            conditions (disable for speed once a protocol is trusted).
        early_stop: halt decision-only simulations once *every* process
            has decided.  Witnesses, merge inputs and the observed bound
            always come from full-horizon traces (re-materialized on
            demand), so outcomes are unchanged.
        reuse: enable the execution cache's checkpoint-resume and
            quiescent-aliasing reuses.  Disabling both ``early_stop``
            and ``reuse`` replicates the simulate-everything pipeline.
        cache: a shared :class:`ExecutionCache`; by default each driver
            builds its own.
        profile: record wall-clock timings — a
            :class:`~repro.parallel.profiling.ProfilingObserver` on every
            engine run plus per-phase driver spans — surfaced as
            ``AttackOutcome.profile``.
        tracer: the structured-telemetry sink (default: the shared
            zero-overhead :data:`~repro.obs.tracer.NULL_TRACER`).  A
            live :class:`~repro.obs.tracer.LedgerTracer` receives every
            pipeline phase as a span, every simulated round as an
            ``engine.round`` event with message-count attributes, and
            the final cache/bound counters — the run-ledger view of the
            attack.  Telemetry never affects outcomes.
        certify: package the outcome as a portable v1 attack
            certificate (``AttackOutcome.certificate``): the pipeline
            records which configuration produced each trace and which
            merge/swap produced the witness, and the final artifact
            embeds the evidence chain for
            :func:`repro.certify.verifier.verify_certificate`.
        worldlog: an open :class:`~repro.worldlog.store.WorldLog` to
            record in-band milestones into (default ``None``: no
            records).  The driver appends a ``checkpoint`` record per
            fault-free checkpointer it stores and — when ``certify`` is
            on — a ``cert.artifact`` record carrying the assembled
            certificate's exact canonical text, so the certificate view
            derived from the log is byte-identical to the file the CLI
            writes.  Recording never affects outcomes.
        kernel: which round engine simulates — ``"object"`` forces the
            per-message object engine; ``"mask"`` requests the bitmask
            kernel (:mod:`repro.sim.kernel`); ``"auto"`` (default)
            selects the kernel whenever the run is kernel-representable.
            The driver's adversaries (no-fault and Definition-1
            isolation) always compile, so under ``auto`` the kernel
            runs unless an engine-level observer is required: profiling
            and live tracing consume per-round
            :class:`~repro.sim.engine.RoundEvent` streams the kernel
            does not produce, so both force the object engine (also
            under ``"mask"``).  Both engines produce bit-identical
            executions and therefore equal outcomes — witnesses,
            bounds, logs and reuse counters; only speed differs.
    """

    spec: ProtocolSpec
    partition: ABCPartition | None = None
    verify: bool = True
    check: bool = True
    early_stop: bool = True
    reuse: bool = True
    cache: ExecutionCache | None = None
    profile: bool = False
    certify: bool = False
    tracer: Tracer = NULL_TRACER
    worldlog: "WorldLog | None" = None
    telemetry: "TelemetryBus | None" = None
    kernel: str = "auto"
    _use_kernel: bool = field(default=False, repr=False)
    _counts_at_start: dict | None = field(default=None, repr=False)
    _phase_timer: PhaseTimer | None = field(default=None, repr=False)
    _profiler: ProfilingObserver | None = field(default=None, repr=False)
    _metrics: "MetricsRegistry | None" = field(default=None, repr=False)
    _trace_observers: tuple = field(default=(), repr=False)
    _log: list[str] = field(default_factory=list, repr=False)
    _max_messages: int = field(default=0, repr=False)
    _requested: set = field(default_factory=set, repr=False)
    _rounds_simulated: int = field(default=0, repr=False)
    _rounds_baseline: int = field(default=0, repr=False)
    _prefix_rounds_skipped: int = field(default=0, repr=False)
    _early_stops: int = field(default=0, repr=False)
    # certification trail: which (bit, group, from_round) produced each
    # trace, plus the merge/swap contexts the witness (if any) fell out
    # of.  Keyed by object identity — the cache keeps the traces alive
    # for the driver's lifetime.
    _cert_origin: dict = field(default_factory=dict, repr=False)
    _cert_merge_ctx: dict | None = field(default=None, repr=False)
    _cert_swap_ctx: dict | None = field(default=None, repr=False)
    _cert_max_execution: Execution | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.partition is None:
            self.partition = canonical_partition(self.spec.n, self.spec.t)
        if (self.partition.n, self.partition.t) != (
            self.spec.n,
            self.spec.t,
        ):
            raise ValueError("partition does not match the spec's (n, t)")
        if self.cache is None:
            self.cache = ExecutionCache()
        if self.profile:
            self._phase_timer = PhaseTimer()
            self._profiler = ProfilingObserver()
        if self.tracer.enabled:
            from repro.obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
            self._trace_observers = self.tracer.round_observers(
                floor=weak_consensus_floor(self.spec.t),
                metrics=self._metrics,
            )
            self._counts_at_start = object_counts()
        if self.telemetry is not None:
            # Sampled telemetry rides the same observer slot.  It never
            # forces the object engine (unlike live tracing): under the
            # mask kernel the per-round tap sees nothing and sampling
            # happens at execution boundaries instead.
            if self._metrics is None:
                from repro.obs.metrics import MetricsRegistry

                self._metrics = MetricsRegistry()
            self.telemetry.attach_metrics(self._metrics)
            self._trace_observers = (
                *self._trace_observers,
                self.telemetry.round_tap(
                    floor=weak_consensus_floor(self.spec.t)
                ),
            )
        if self.kernel not in ("auto", "object", "mask"):
            raise ValueError(
                f"kernel must be 'auto', 'object' or 'mask', "
                f"not {self.kernel!r}"
            )
        # Profiling and live tracing need the object engine's per-round
        # event stream; the kernel produces none, so they win.
        self._use_kernel = (
            self.kernel != "object"
            and not self.profile
            and not self.tracer.enabled
        )
        self._spec_key: _SpecKey = (
            self.spec.name,
            self.spec.n,
            self.spec.t,
            self.spec.rounds,
        )

    def attack(self) -> AttackOutcome:
        """Run the full pipeline; always returns (never raises _Found)."""
        with self.tracer.span(
            "attack",
            protocol=self.spec.name,
            n=self.spec.n,
            t=self.spec.t,
        ):
            return self._attack()

    def _attack(self) -> AttackOutcome:
        witness: ViolationWitness | None = None
        default_bit: Payload | None = None
        critical_round: Round | None = None
        try:
            with self._phase("fault-free"):
                self._fault_free_checks()
            with self._phase("isolation-scan"):
                decisions = self._round_one_isolations()
            default_bit = self._lemma3_consistency(decisions)
            if default_bit is not None:
                with self._phase("isolation-scan"):
                    critical_round = self._critical_round_scan(
                        default_bit
                    )
                if critical_round is not None:
                    self._final_merge(default_bit, critical_round)
            self._note("pipeline exhausted without a violation")
        except _Found as found:
            witness = found.witness
            if self.verify:
                with self._phase("witness-verify"):
                    verify_witness(witness, self.spec.factory)
                self._note("witness re-verified from scratch")
        assert self.partition is not None
        assert self.cache is not None
        self._note(
            f"engine: simulated {self._rounds_simulated} rounds vs "
            f"{self._rounds_baseline} baseline "
            f"({self.cache.hits} cache hits, "
            f"{self.cache.alias_hits} reuse hits, "
            f"{self._prefix_rounds_skipped} prefix rounds skipped, "
            f"{self._early_stops} early stops)"
        )
        profile: AttackProfile | None = None
        if self._phase_timer is not None:
            profile = self._phase_timer.profile(self._profiler)
        certificate: "Certificate | None" = None
        if self.certify:
            with self._phase("certify"):
                certificate = self._build_certificate(
                    witness, default_bit, critical_round
                )
            self._note(
                "certificate assembled: "
                f"{len(certificate.execution_labels)} execution(s) "
                "embedded"
            )
            if self.worldlog is not None:
                label = f"{self.spec.name}-n{self.spec.n}-t{self.spec.t}"
                self.worldlog.append(
                    "cert.artifact",
                    {"label": label, "text": certificate.dumps()},
                    cell_id=label,
                )
        self._flush_telemetry(witness)
        return AttackOutcome(
            protocol=self.spec.name,
            n=self.spec.n,
            t=self.spec.t,
            partition=self.partition,
            witness=witness,
            bound=BoundComparison(
                t=self.spec.t, observed=self._max_messages
            ),
            default_bit=default_bit,
            critical_round=critical_round,
            log=tuple(self._log),
            rounds_simulated=self._rounds_simulated,
            rounds_baseline=self._rounds_baseline,
            profile=profile,
            certificate=certificate,
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    def _fault_free_checks(self) -> None:
        """Stage 1: Weak Validity and Termination in E_0 and E_1."""
        for bit in (0, 1):
            execution = self._run(bit, group=None, from_round=None)
            self._require_unanimous(
                execution, context=f"fault-free all-{bit}"
            )
            for pid in range(self.spec.n):
                decision = execution.decision(pid)
                if decision != bit:
                    self._found(
                        ViolationWitness(
                            kind=ViolationKind.WEAK_VALIDITY,
                            execution=execution,
                            culprit=pid,
                            note=(
                                f"all processes correct and propose {bit} "
                                f"but p{pid} decided {decision!r}"
                            ),
                        )
                    )

    def _round_one_isolations(self) -> dict[tuple[Bit, str], Payload]:
        """Stage 2: the four ``E_b^{G(1)}`` executions plus Lemma-2 checks."""
        decisions: dict[tuple[Bit, str], Payload] = {}
        for bit in (0, 1):
            for label in ("B", "C"):
                execution = self._run(bit, group=label, from_round=1)
                refetch = self._materializer(bit, label, 1)
                decided = self._require_unanimous(
                    execution,
                    context=f"E_{bit}^{{{label}(1)}}",
                    refetch=refetch,
                )
                decisions[(bit, label)] = decided
                self._lemma2_check(
                    execution, label, 1, decided, refetch=refetch
                )
        return decisions

    def _lemma3_consistency(
        self, decisions: dict[tuple[Bit, str], Payload]
    ) -> Payload | None:
        """Stage 3: the four round-1 decisions must coincide (Lemma 3).

        Returns the common bit ``d`` when consistent; on a mismatch merges
        the offending mergeable pair and attempts extraction inside it,
        returning ``None`` if nothing could be extracted (pipeline over).
        """
        values = set(decisions.values())
        if len(values) == 1:
            d = values.pop()
            self._note(f"Lemma 3 consistent: default bit d = {d!r}")
            return d
        self._note(
            f"Lemma 3 violated across round-1 isolations: {decisions}"
        )
        for bit_b in (0, 1):
            for bit_c in (0, 1):
                d_b = decisions[(bit_b, "B")]
                d_c = decisions[(bit_c, "C")]
                if d_b == d_c:
                    continue
                self._merge_and_extract(
                    exec_b=self._run(bit_b, "B", 1, full=True),
                    exec_c=self._run(bit_c, "C", 1, full=True),
                    round_b=1,
                    round_c=1,
                    expect_b=d_b,
                    expect_c=d_c,
                )
        self._note("merge extraction inconclusive at round-1 stage")
        return None

    def _critical_round_scan(self, default_bit: Payload) -> Round | None:
        """Stage 4 (Lemma 4): find R with decisions d at B(R), f at B(R+1)."""
        family_bit = 1 - int(default_bit)  # binary weak consensus
        previous = default_bit
        for k in range(2, self.spec.rounds + 3):
            execution = self._run(family_bit, "B", k)
            refetch = self._materializer(family_bit, "B", k)
            decided = self._require_unanimous(
                execution,
                context=f"E_{family_bit}^{{B({k})}}",
                refetch=refetch,
            )
            self._lemma2_check(
                execution, "B", k, decided, refetch=refetch
            )
            if decided != previous:
                critical = k - 1
                self._note(
                    f"critical round R = {critical}: decisions "
                    f"{previous!r} at B({critical}) vs {decided!r} at "
                    f"B({critical + 1})"
                )
                return critical
        self._note(
            "no critical round found within the horizon — the decision "
            "never flipped, contradicting Weak Validity bookkeeping"
        )
        return None

    def _final_merge(
        self, default_bit: Payload, critical_round: Round
    ) -> None:
        """Stage 5 (Lemma 5 / Figure 2): merge B(R+1) with C(R)."""
        family_bit = 1 - int(default_bit)
        exec_c = self._run(family_bit, "C", critical_round, full=True)
        decided_c = self._require_unanimous(
            execution=exec_c,
            context=f"E_{family_bit}^{{C({critical_round})}}",
        )
        self._lemma2_check(exec_c, "C", critical_round, decided_c)
        if decided_c == default_bit:
            # The paper's main line: B at R+1 decides f, C at R decides d.
            self._merge_and_extract(
                exec_b=self._run(
                    family_bit, "B", critical_round + 1, full=True
                ),
                exec_c=exec_c,
                round_b=critical_round + 1,
                round_c=critical_round,
                expect_b=family_bit,
                expect_c=default_bit,
            )
        else:
            # Lemma 3 already fails for the same-round pair (B(R), C(R)).
            self._merge_and_extract(
                exec_b=self._run(
                    family_bit, "B", critical_round, full=True
                ),
                exec_c=exec_c,
                round_b=critical_round,
                round_c=critical_round,
                expect_b=default_bit,
                expect_c=decided_c,
            )
        self._note("final merge extraction inconclusive")

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def _merge_and_extract(
        self,
        exec_b: Execution,
        exec_c: Execution,
        round_b: Round,
        round_c: Round,
        expect_b: Payload,
        expect_c: Payload,
    ) -> None:
        """Merge two isolated executions and try both extractions.

        ``expect_b``/``expect_c`` are the decisions the replayed groups
        carry over by indistinguishability; group A must disagree with at
        least one of them when the expectations differ.
        """
        assert self.partition is not None
        spec = MergeSpec(
            group_b=self.partition.group_b,
            group_c=self.partition.group_c,
            round_b=round_b,
            round_c=round_c,
        )
        with self._phase("merge"):
            merged = merge(spec, exec_b, exec_c, self.spec.factory)
        if self.certify:
            self._cert_merge_ctx = {
                "exec_b": exec_b,
                "exec_c": exec_c,
                "round_b": round_b,
                "round_c": round_c,
                "merged": merged,
            }
        self._observe(merged)
        self._note(
            f"merged B({round_b}) with C({round_c}); expecting B->"
            f"{expect_b!r}, C->{expect_c!r}"
        )
        decided = self._require_unanimous(
            merged, context=f"merge(B({round_b}), C({round_c}))"
        )
        if decided != expect_b:
            self._lemma2_extract(merged, "B", round_b, decided)
        if decided != expect_c:
            self._lemma2_extract(merged, "C", round_c, decided)

    def _lemma2_check(
        self,
        execution: Execution,
        group_label: str,
        from_round: Round,
        correct_decision: Payload,
        refetch: "Callable[[], Execution] | None" = None,
    ) -> None:
        """If the isolated group's majority strays, try the extraction."""
        group = self._group(group_label)
        majority = majority_decision(execution, sorted(group))
        if majority != correct_decision:
            self._note(
                f"Lemma 2 premise violated: majority of {group_label} "
                f"decided {majority!r} vs correct {correct_decision!r}"
            )
            if refetch is not None and self._truncated(execution):
                execution = refetch()
            self._lemma2_extract(
                execution, group_label, from_round, correct_decision
            )

    def _lemma2_extract(
        self,
        execution: Execution,
        group_label: str,
        from_round: Round,
        correct_decision: Payload,
    ) -> None:
        """Lemma 2's constructive step: swap omissions to free a deviant.

        Scans the isolated group's members in order of how few messages
        from correct processes they receive-omitted (the paper's
        ``|M_{X→p}| < t/2`` counting argument picks exactly these), and
        for each deviant attempts ``swap_omission``; a successful swap
        yields a valid execution in which the deviant is *correct* yet
        disagrees with (or never decides unlike) a correct witness.
        """
        group = self._group(group_label)
        correct = execution.correct

        def omitted_from_correct(pid: ProcessId) -> int:
            behavior = execution.behavior(pid)
            return sum(
                1
                for message in behavior.all_receive_omitted()
                if message.sender in correct
            )

        candidates = sorted(
            (pid for pid in group
             if execution.decision(pid) != correct_decision),
            key=lambda pid: (omitted_from_correct(pid), pid),
        )
        for pid in candidates:
            try:
                with self._phase("swap"):
                    swapped = swap_omission_checked(execution, pid)
            except ModelViolation as error:
                self._note(
                    f"extraction via p{pid} failed: {error} "
                    "(the message-count premise protects the algorithm "
                    "here)"
                )
                continue
            remaining_correct = sorted(
                correct - swapped.execution.faulty
            )
            witnesses = [
                q
                for q in remaining_correct
                if swapped.execution.decision(q) == correct_decision
            ]
            if not witnesses:
                self._note(
                    f"extraction via p{pid}: no correct witness survived "
                    "the swap"
                )
                continue
            counterpart = witnesses[0]
            if self.certify:
                self._cert_swap_ctx = {
                    "source": execution,
                    "result": swapped.execution,
                    "process": pid,
                }
            if swapped.execution.decision(pid) is None:
                self._found(
                    ViolationWitness(
                        kind=ViolationKind.TERMINATION,
                        execution=swapped.execution,
                        culprit=pid,
                        note=(
                            f"swap freed p{pid} (isolated in {group_label} "
                            f"from round {from_round}) which never decides"
                        ),
                    )
                )
            self._found(
                ViolationWitness(
                    kind=ViolationKind.AGREEMENT,
                    execution=swapped.execution,
                    culprit=pid,
                    counterpart=counterpart,
                    note=(
                        f"swap freed p{pid} (isolated in {group_label} "
                        f"from round {from_round}); decides "
                        f"{swapped.execution.decision(pid)!r} vs "
                        f"p{counterpart}'s {correct_decision!r}"
                    ),
                )
            )

    def _require_unanimous(
        self,
        execution: Execution,
        context: str,
        refetch: "Callable[[], Execution] | None" = None,
    ) -> Payload:
        """All correct processes decided one value — or a direct witness.

        ``refetch`` re-materializes the full-horizon trace when the
        checked execution was early-stopped and a witness must embed it
        (decisions are write-once, so the decision data is unaffected).
        """
        undecided = [
            pid
            for pid in sorted(execution.correct)
            if execution.decision(pid) is None
        ]
        if undecided:
            if refetch is not None and self._truncated(execution):
                execution = refetch()
            self._found(
                ViolationWitness(
                    kind=ViolationKind.TERMINATION,
                    execution=execution,
                    culprit=undecided[0],
                    note=f"correct p{undecided[0]} undecided in {context}",
                )
            )
        by_value: dict[Payload, ProcessId] = {}
        for pid in sorted(execution.correct):
            by_value.setdefault(execution.decision(pid), pid)
        if len(by_value) > 1:
            if refetch is not None and self._truncated(execution):
                execution = refetch()
            values = sorted(by_value, key=repr)
            self._found(
                ViolationWitness(
                    kind=ViolationKind.AGREEMENT,
                    execution=execution,
                    culprit=by_value[values[0]],
                    counterpart=by_value[values[1]],
                    note=f"correct processes split in {context}",
                )
            )
        return next(iter(by_value))

    def _truncated(self, execution: Execution) -> bool:
        return execution.rounds < self.spec.rounds

    def _materializer(
        self, bit: Bit, group: str, from_round: Round
    ) -> "Callable[[], Execution]":
        """A thunk re-running the configuration at full horizon."""
        return lambda: self._run(bit, group, from_round, full=True)

    def _run(
        self,
        bit: Bit,
        group: str | None,
        from_round: Round | None,
        *,
        full: bool = False,
    ) -> Execution:
        """Run (and cache) ``E_bit`` or ``E_bit^{G(k)}``.

        ``full`` demands a full-horizon trace (witness embedding, merge
        input); otherwise a cached early-stopped trace is acceptable for
        decision queries.  Both the quiescent-alias and checkpoint-resume
        paths return executions bit-identical to a fresh simulation, so
        callers never observe the difference.
        """
        execution = self._run_config(bit, group, from_round, full=full)
        if self.certify:
            # Remember which configuration produced the trace; with
            # quiescent aliasing one trace may serve several requested
            # rounds, and the *first* (actually simulated) origin is the
            # one whose isolation claim certainly holds.
            self._cert_origin.setdefault(
                id(execution), (bit, group, from_round)
            )
        return execution

    def _run_config(
        self,
        bit: Bit,
        group: str | None,
        from_round: Round | None,
        *,
        full: bool = False,
    ) -> Execution:
        assert self.cache is not None
        horizon = self.spec.rounds
        sig = (
            None
            if group is None
            else (self._group(group), from_round)
        )
        # Baseline accounting: the reuse-free pipeline simulates each
        # distinct configuration once, at full horizon.
        if (bit, sig) not in self._requested:
            self._requested.add((bit, sig))
            self._rounds_baseline += horizon
        key = (self._spec_key, bit, sig)
        entry = self.cache.lookup(key)
        if entry is not None and (entry.complete or not full):
            self.cache.hits += 1
            return entry.execution
        if group is None:
            return self._run_fault_free(bit, key)
        assert from_round is not None
        members = self._group(group)
        if self.reuse:
            reused = self._try_reuse(
                key, bit, members, from_round, horizon
            )
            if reused is not None:
                return reused
        return self._simulate_isolation(
            key, bit, members, from_round, horizon, full
        )

    def _run_fault_free(self, bit: Bit, key: tuple) -> Execution:
        """Simulate a fault-free run, checkpointing it for later resumes.

        Always full-horizon: fault-free traces anchor the observed bound
        and the Weak Validity witnesses, and their checkpoints seed every
        prefix resume.
        """
        assert self.cache is not None
        if self._use_kernel:
            return self._run_fault_free_kernel(bit, key)
        streaming = StreamingComplexity()
        observers: list[RoundObserver] = [streaming]
        checkpointer: MachineCheckpointer | None = None
        if self.reuse:
            # Only start-of-round states the Lemma-4 scan can actually
            # resume from (from_round >= 2, within the horizon).
            checkpointer = MachineCheckpointer(
                rounds=range(2, self.spec.rounds + 1)
            )
            observers.append(checkpointer)
        observers.extend(self._engine_observers())
        execution = self.spec.run_uniform(
            bit, None, check=self.check, observers=observers
        )
        self._rounds_simulated += execution.rounds
        messages = streaming.correct_messages
        self._observe_messages(messages, execution=execution)
        self.cache.store(key, _CacheEntry(execution, messages, True))
        self.cache.misses += 1
        if checkpointer is not None and checkpointer.enabled:
            self.cache.store_checkpointer(self._spec_key, bit, checkpointer)
            if self.worldlog is not None:
                self.worldlog.append(
                    "checkpoint",
                    {
                        "protocol": self.spec.name,
                        "n": self.spec.n,
                        "t": self.spec.t,
                        "bit": bit,
                        "rounds": execution.rounds,
                        "enabled": checkpointer.enabled,
                    },
                )
        return execution

    def _run_fault_free_kernel(self, bit: Bit, key: tuple) -> Execution:
        """The mask-kernel fault-free run.

        Instead of a :class:`MachineCheckpointer` deep-copying machines
        at every registered round boundary, the cache records the mask
        trace plus a :class:`~repro.sim.kernel.PrefixForker`; scan
        candidates deep-copy once at their divergence round.  The
        materialized execution is additionally pushed through
        :func:`check_execution` when checking is on — fault-free traces
        anchor witnesses and the observed bound, so they get the full
        Appendix-A treatment even on the fast path.
        """
        assert self.cache is not None
        proposals = [bit] * self.spec.n
        trace = run_kernel(
            self._sim_config(),
            proposals,
            self.spec.factory,
            no_faults_compiled(self.spec.n),
        )
        execution = trace.to_execution()
        if self.check:
            check_execution(execution)
        self._rounds_simulated += trace.rounds_run
        messages = trace.message_complexity()
        self._observe_messages(messages, execution=execution)
        self.cache.store(key, _CacheEntry(execution, messages, True))
        self.cache.misses += 1
        if self.reuse:
            forker = PrefixForker(
                self._sim_config(), proposals, self.spec.factory, trace
            )
            self.cache.store_kernel_state(
                self._spec_key, bit, (trace, forker)
            )
            if self.worldlog is not None:
                self.worldlog.append(
                    "checkpoint",
                    {
                        "protocol": self.spec.name,
                        "n": self.spec.n,
                        "t": self.spec.t,
                        "bit": bit,
                        "rounds": trace.rounds_run,
                        "enabled": True,
                    },
                )
        return execution

    def _try_reuse(
        self,
        key: tuple,
        bit: Bit,
        members: frozenset[ProcessId],
        from_round: Round,
        horizon: int,
    ) -> Execution | None:
        """The semantic reuses: beyond-horizon identity and aliasing."""
        assert self.cache is not None
        if from_round > horizon:
            # The isolation never acts within the horizon: the trace is
            # the fault-free one with the faulty set rewritten to the
            # (fault-committing-nothing) isolated group.
            base = self._run(bit, None, None)
            execution = Execution(
                n=self.spec.n,
                t=self.spec.t,
                faulty=members,
                behaviors=base.behaviors,
            )
            entry = _CacheEntry(
                execution, execution.message_complexity(), True
            )
            self.cache.store(key, entry)
            self.cache.alias_hits += 1
            self._observe_messages(entry.messages, execution=execution)
            return execution
        family = self.cache.isolation_family(self._spec_key, bit, members)
        for k_prime, sibling in sorted(family, reverse=True):
            if k_prime == from_round or not sibling.complete:
                continue
            lo, hi = sorted((k_prime, from_round))
            if quiescent_toward(sibling.execution, members, lo, hi):
                self.cache.store(key, sibling)
                self.cache.alias_hits += 1
                self._observe_messages(
                    sibling.messages, execution=sibling.execution
                )
                return sibling.execution
        return None

    def _simulate_isolation(
        self,
        key: tuple,
        bit: Bit,
        members: frozenset[ProcessId],
        from_round: Round,
        horizon: int,
        full: bool,
    ) -> Execution:
        """Actually simulate ``E_bit^{G(from_round)}``.

        Resumes from the fault-free checkpoint at ``from_round`` when
        available (the isolated run is identical to the fault-free one
        before its isolation round); falls back to a from-scratch run,
        early-stopped when only decisions are needed.
        """
        assert self.cache is not None
        if self._use_kernel:
            return self._simulate_isolation_kernel(
                key, bit, members, from_round, horizon, full
            )
        adversary = isolate_group(members, from_round)
        checkpointer = (
            self.cache.checkpointer(self._spec_key, bit)
            if self.reuse
            else None
        )
        if (
            checkpointer is not None
            and checkpointer.enabled
            and from_round >= 2
            and checkpointer.has_checkpoint(from_round)
        ):
            base = self._run(bit, None, None)
            config = SimulationConfig(
                n=self.spec.n,
                t=self.spec.t,
                rounds=horizon,
                check=self.check,
            )
            prefix = [
                [
                    base.behavior(pid).fragment(round_)
                    for round_ in range(1, from_round)
                ]
                for pid in range(self.spec.n)
            ]
            execution = resume_execution(
                config,
                checkpointer.checkpoint(from_round),
                adversary,
                prefix,
                from_round,
                observers=self._engine_observers(),
            )
            self._rounds_simulated += horizon - from_round + 1
            self._prefix_rounds_skipped += from_round - 1
            messages = execution.message_complexity()
            self._observe_messages(messages, execution=execution)
            self.cache.store(key, _CacheEntry(execution, messages, True))
            self.cache.misses += 1
            return execution
        streaming = StreamingComplexity()
        observers: list[RoundObserver] = [streaming]
        if self.early_stop and not full:
            observers.append(EarlyStopPolicy(scope="all"))
        observers.extend(self._engine_observers())
        execution = self.spec.run_uniform(
            bit, adversary, check=self.check, observers=observers
        )
        self._rounds_simulated += execution.rounds
        complete = execution.rounds == horizon
        if not complete:
            self._early_stops += 1
        messages = streaming.correct_messages
        if complete:
            # Truncated traces undercount §2 complexity (protocols may
            # keep sending after deciding), so only full runs feed the
            # observed bound.
            self._observe_messages(messages, execution=execution)
        self.cache.store(key, _CacheEntry(execution, messages, complete))
        self.cache.misses += 1
        return execution

    def _simulate_isolation_kernel(
        self,
        key: tuple,
        bit: Bit,
        members: frozenset[ProcessId],
        from_round: Round,
        horizon: int,
        full: bool,
    ) -> Execution:
        """The batched mask-kernel isolation scan step.

        Candidates with ``from_round >= 2`` fan out of the fault-free
        prefix via the recorded :class:`~repro.sim.kernel.PrefixForker`
        (one deep-copy at the divergence round, memoized across
        candidates and bits of the scan) and simulate only their tail as
        a mask delta.  The forker's prefix replays are checkpoint
        *provisioning* — the kernel analogue of the object path's
        per-round :class:`MachineCheckpointer` deep-copies — and like
        those are excluded from the ``rounds_simulated`` counter, so the
        two engines report identical reuse accounting (and outcomes stay
        engine-independent under ``AttackOutcome`` equality).
        """
        assert self.cache is not None
        compiled = compile_omissions(
            isolate_group(members, from_round), self.spec.n
        )
        assert compiled is not None  # isolations always compile
        state = (
            self.cache.kernel_state(self._spec_key, bit)
            if self.reuse
            else None
        )
        if state is not None and 2 <= from_round <= horizon:
            base_trace, forker = state
            machines, _advanced = forker.machines_at(from_round)
            if machines is not None:
                # Touch the fault-free base through the cache exactly as
                # the object resume path does (same hit accounting, same
                # certification origin bookkeeping).
                self._run(bit, None, None)
                trace = fork_kernel(
                    self._sim_config(),
                    machines,
                    compiled,
                    base_trace,
                    from_round,
                )
                execution = trace.to_execution()
                self._rounds_simulated += horizon - from_round + 1
                self._prefix_rounds_skipped += from_round - 1
                messages = trace.message_complexity()
                self._observe_messages(messages, execution=execution)
                self.cache.store(
                    key, _CacheEntry(execution, messages, True)
                )
                self.cache.misses += 1
                return execution
        early = "all" if self.early_stop and not full else None
        trace = run_kernel(
            self._sim_config(),
            [bit] * self.spec.n,
            self.spec.factory,
            compiled,
            early_stop=early,
        )
        execution = trace.to_execution()
        self._rounds_simulated += trace.rounds_run
        complete = trace.rounds_run == horizon
        if not complete:
            self._early_stops += 1
        messages = trace.message_complexity()
        if complete:
            self._observe_messages(messages, execution=execution)
        self.cache.store(key, _CacheEntry(execution, messages, complete))
        self.cache.misses += 1
        return execution

    def _sim_config(self) -> SimulationConfig:
        """The kernel-run configuration mirroring ``spec.run_uniform``."""
        return SimulationConfig(
            n=self.spec.n,
            t=self.spec.t,
            rounds=self.spec.rounds,
            check=self.check,
        )

    def _phase(self, name: str):
        """A span for ``name`` — timed and/or traced, no-op otherwise."""
        if self._phase_timer is None and not self.tracer.enabled:
            return nullcontext()
        if self._phase_timer is None:
            return self.tracer.span(name)
        if not self.tracer.enabled:
            return self._phase_timer.phase(name)
        stack = ExitStack()
        stack.enter_context(self._phase_timer.phase(name))
        stack.enter_context(self.tracer.span(name))
        return stack

    def _engine_observers(self) -> tuple[RoundObserver, ...]:
        """The telemetry observers attached to every engine run.

        The tracing observers come before the profiler so profiled
        round times keep their historical meaning (simulation plus the
        checking observers, not the telemetry cost).
        """
        extra: tuple[RoundObserver, ...] = self._trace_observers
        if self._profiler is not None:
            extra = (*extra, self._profiler)
        return extra

    def _flush_telemetry(self, witness: ViolationWitness | None) -> None:
        """Fold the pipeline's final counters into the metrics/ledger."""
        if self._metrics is None:
            return
        assert self.cache is not None
        registry = self._metrics
        registry.absorb_cache(self.cache)
        registry.counter("engine.rounds_simulated").add(
            self._rounds_simulated
        )
        registry.counter("engine.rounds_baseline").add(
            self._rounds_baseline
        )
        registry.counter("engine.prefix_rounds_skipped").add(
            self._prefix_rounds_skipped
        )
        registry.counter("engine.early_stops").add(self._early_stops)
        if self._counts_at_start is not None:
            # Interpreter-wide materialization deltas over the attack:
            # machine deep-copies plus the kernel's mask/popcount work
            # (zero whenever tracing forced the object engine, which
            # still documents *which* engine ran).
            delta = object_counts_delta(self._counts_at_start)
            registry.counter("engine.machine_snapshots").add(
                delta["machine_snapshots"]
            )
            registry.counter("engine.masks_built").add(
                delta["masks_built"]
            )
            registry.counter("engine.popcounts").add(delta["popcounts"])
        registry.counter("witness.found").add(1 if witness else 0)
        floor = weak_consensus_floor(self.spec.t)
        registry.gauge("bound.observed").set(self._max_messages)
        registry.gauge("bound.floor").set(floor)
        if floor:
            registry.gauge("bound.vs_floor").set(
                self._max_messages / floor
            )
        registry.emit(self.tracer)

    def _group(self, label: str) -> frozenset[ProcessId]:
        assert self.partition is not None
        if label == "B":
            return self.partition.group_b
        if label == "C":
            return self.partition.group_c
        raise ReproError(f"unknown group label {label!r}")

    def _observe(self, execution: Execution) -> None:
        self._observe_messages(
            execution.message_complexity(), execution=execution
        )

    def _observe_messages(
        self, messages: int, execution: Execution | None = None
    ) -> None:
        if (
            self.certify
            and execution is not None
            and (
                messages > self._max_messages
                or self._cert_max_execution is None
            )
        ):
            self._cert_max_execution = execution
        self._max_messages = max(self._max_messages, messages)
        if self.telemetry is not None:
            # The kernel path produces no round events; execution
            # boundaries are its sampling points.
            self.telemetry.maybe_sample()

    def _note(self, message: str) -> None:
        self._log.append(message)

    def _found(self, witness: ViolationWitness) -> None:
        self._note(f"violation: {witness.summary()}")
        raise _Found(witness)

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------

    def _build_certificate(
        self,
        witness: ViolationWitness | None,
        default_bit: Payload | None,
        critical_round: Round | None,
    ) -> "Certificate":
        """Package the attack's evidence chain as a v1 certificate.

        Embeds only the critical-path traces: the witness execution, the
        pre-swap source, the merge inputs (when the source is a merge
        result) — or, for a respected bound, the trace attaining the
        observed maximum.  Each embedded trace carries its provenance
        (which configuration simulated it, which construction derived
        it), the Definition-1 isolation claims its origin guarantees,
        and the Lemma-15/16 indistinguishability conclusions.
        """
        from repro.certify.format import build_certificate

        assert self.partition is not None
        executions: dict[str, Execution] = {}
        provenance: list[dict] = []
        indistinguishability: list[dict] = []
        isolations: list[dict] = []

        def embed(execution: Execution, label: str) -> str:
            executions[label] = execution
            origin = self._cert_origin.get(id(execution))
            if origin is not None:
                bit, group, from_round = origin
                step: dict = {"op": "simulate", "result": label,
                              "proposal_bit": bit}
                if group is not None:
                    step["op"] = "isolate"
                    step["isolated_group"] = group
                    step["from_round"] = from_round
                    isolations.append(
                        {
                            "execution": label,
                            "group": sorted(self._group(group)),
                            "from_round": from_round,
                        }
                    )
                provenance.append(step)
            return label

        def embed_with_history(execution: Execution, label: str) -> str:
            ctx = self._cert_merge_ctx
            if ctx is not None and ctx["merged"] is execution:
                embed(ctx["exec_b"], "merge-input-b")
                embed(ctx["exec_c"], "merge-input-c")
                executions[label] = execution
                provenance.append(
                    {
                        "op": "merge",
                        "inputs": ["merge-input-b", "merge-input-c"],
                        "result": label,
                        "round_b": ctx["round_b"],
                        "round_c": ctx["round_c"],
                    }
                )
                # Lemma 16: the merge replays B's and C's behaviors
                # verbatim, so each group cannot tell the merged
                # execution from its own input.
                indistinguishability.append(
                    {
                        "left": "merge-input-b",
                        "right": label,
                        "processes": sorted(self.partition.group_b),
                    }
                )
                indistinguishability.append(
                    {
                        "left": "merge-input-c",
                        "right": label,
                        "processes": sorted(self.partition.group_c),
                    }
                )
            else:
                embed(execution, label)
            return label

        witness_label: str | None = None
        max_label: str | None = None
        if witness is not None:
            witness_label = "witness"
            swap_ctx = self._cert_swap_ctx
            if (
                swap_ctx is not None
                and swap_ctx["result"] is witness.execution
            ):
                embed_with_history(swap_ctx["source"], "pre-swap")
                executions[witness_label] = witness.execution
                provenance.append(
                    {
                        "op": "swap",
                        "source": "pre-swap",
                        "result": witness_label,
                        "process": swap_ctx["process"],
                    }
                )
                # Lemma 15: swap_omission only re-attributes blame;
                # nobody's observations change.
                indistinguishability.append(
                    {
                        "left": "pre-swap",
                        "right": witness_label,
                        "processes": list(range(self.spec.n)),
                    }
                )
            else:
                embed_with_history(witness.execution, witness_label)
        elif self._cert_max_execution is not None:
            max_label = embed_with_history(
                self._cert_max_execution, "max-messages"
            )
        return build_certificate(
            protocol=self.spec.name,
            n=self.spec.n,
            t=self.spec.t,
            rounds=self.spec.rounds,
            partition=self.partition,
            executions=executions,
            witness=witness,
            witness_label=witness_label,
            provenance=provenance,
            indistinguishability=indistinguishability,
            isolations=isolations,
            observed=self._max_messages,
            max_label=max_label,
            default_bit=default_bit,
            critical_round=critical_round,
        )


def attack_weak_consensus(
    spec: ProtocolSpec,
    partition: ABCPartition | None = None,
    *,
    verify: bool = True,
    minimize: bool = False,
    check: bool = True,
    early_stop: bool = True,
    reuse: bool = True,
    cache: ExecutionCache | None = None,
    profile: bool = False,
    certify: bool = False,
    tracer: Tracer = NULL_TRACER,
    worldlog: "WorldLog | None" = None,
    telemetry: "TelemetryBus | None" = None,
    kernel: str = "auto",
) -> AttackOutcome:
    """Run the full lower-bound pipeline against ``spec``.

    Args:
        partition: the (A, B, C) split (default: canonical sizing).
        verify: re-verify any witness from scratch before returning.
        minimize: additionally truncate the witness execution to its
            shortest still-verifying prefix (agreement witnesses only).
            The certificate (if requested) embeds the *unminimized*
            witness execution — the artifact must stay self-consistent.
        check: validate simulated traces against the model conditions.
        early_stop: halt decision-only simulations at the decision round.
        reuse: enable checkpoint-resume and quiescent-alias execution
            reuse (``early_stop=False, reuse=False`` reproduces the
            simulate-everything pipeline round for round).
        cache: a shared :class:`ExecutionCache` for attacking the same
            protocol repeatedly (e.g. across partitions).
        profile: record wall-clock phase and per-round timings on
            ``AttackOutcome.profile`` (timings never affect equality).
        certify: attach a portable v1 attack certificate
            (``AttackOutcome.certificate``) packaging the witness, its
            merge/swap provenance, the isolation and
            indistinguishability claims, and the ``t²/32`` accounting
            for :func:`repro.certify.verifier.verify_certificate`.
        tracer: the structured-telemetry sink (a
            :class:`~repro.obs.tracer.LedgerTracer` to record the run
            ledger; the zero-overhead no-op by default).
        worldlog: an open :class:`~repro.worldlog.store.WorldLog` for
            in-band ``checkpoint`` and ``cert.artifact`` records.
        telemetry: an optional :class:`~repro.obs.telemetry
            .TelemetryBus` sampling the attack into observability-only
            ``telemetry.snapshot`` records (a per-round tap on the
            object engine, execution-boundary pumps on the kernel).
            ``None`` (the default) costs nothing.
        kernel: round-engine selection — ``"auto"`` (default) runs the
            bitmask kernel whenever representable, ``"object"`` forces
            the per-message engine, ``"mask"`` requests the kernel
            (profiling/tracing still force the object engine; see
            :class:`LowerBoundDriver`).  Outcomes are engine-independent.
    """
    driver = LowerBoundDriver(
        spec=spec,
        partition=partition,
        verify=verify,
        check=check,
        early_stop=early_stop,
        reuse=reuse,
        cache=cache,
        profile=profile,
        certify=certify,
        tracer=tracer,
        worldlog=worldlog,
        telemetry=telemetry,
        kernel=kernel,
    )
    outcome = driver.attack()
    if minimize and outcome.witness is not None:
        from dataclasses import replace

        from repro.lowerbound.witnesses import minimize_witness

        outcome = replace(
            outcome,
            witness=minimize_witness(outcome.witness, spec.factory),
        )
    return outcome
