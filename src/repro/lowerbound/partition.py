"""The (A, B, C) partitions of the lower-bound proof (Table 1).

The proof fixes a partition of ``Π`` with ``|B| = |C| = t/4`` (the paper
takes ``t`` divisible by 8 without loss of generality).  The driver
generalizes slightly: any two disjoint non-empty groups with
``|B| + |C| <= t`` support the constructions; the canonical partition uses
``max(1, t // 4)`` and places B and C at the top of the id space, keeping
low-id processes (designated senders, leaders, kings) inside A — the
interesting case for coordinator-based algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ProcessId, validate_system_size


@dataclass(frozen=True)
class ABCPartition:
    """A partition ``(A, B, C)`` of the process set (Table 1).

    Attributes:
        n, t: system parameters.
        group_b: the paper's group ``B``.
        group_c: the paper's group ``C``.
    """

    n: int
    t: int
    group_b: frozenset[ProcessId]
    group_c: frozenset[ProcessId]

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if not self.group_b or not self.group_c:
            raise ValueError("groups B and C must be non-empty")
        if self.group_b & self.group_c:
            raise ValueError("groups B and C must be disjoint")
        if len(self.group_b) + len(self.group_c) > self.t:
            raise ValueError(
                f"|B| + |C| = {len(self.group_b) + len(self.group_c)} "
                f"exceeds the corruption budget t = {self.t}"
            )
        members = self.group_b | self.group_c
        if any(not 0 <= pid < self.n for pid in members):
            raise ValueError(f"group member outside range({self.n})")
        if not self.group_a:
            raise ValueError("group A must be non-empty")

    @property
    def group_a(self) -> frozenset[ProcessId]:
        """Group ``A = Π \\ (B ∪ C)`` — always correct in the proof."""
        return (
            frozenset(range(self.n)) - self.group_b - self.group_c
        )

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return (
            f"A={sorted(self.group_a)} B={sorted(self.group_b)} "
            f"C={sorted(self.group_c)}"
        )


def canonical_partition(n: int, t: int) -> ABCPartition:
    """The default partition: ``|B| = |C| = max(1, t//4)`` at top ids.

    Matches the paper's ``t/4`` sizing for ``t`` divisible by 8 and
    degrades gracefully for small ``t`` (the constructions only need
    ``|B| + |C| <= t`` and non-empty groups, so ``t >= 2`` suffices).

    Raises:
        ValueError: if ``t < 2`` or the groups would not fit alongside a
            non-empty group A.
    """
    validate_system_size(n, t)
    if t < 2:
        raise ValueError(
            f"the two-group construction needs t >= 2, got t={t}"
        )
    size = max(1, t // 4)
    if 2 * size >= n:
        raise ValueError(
            f"groups of {size} leave no correct process with n={n}"
        )
    group_c = frozenset(range(n - size, n))
    group_b = frozenset(range(n - 2 * size, n - size))
    return ABCPartition(n=n, t=t, group_b=group_b, group_c=group_c)


def paper_partition(n: int, t: int) -> ABCPartition:
    """The paper's exact regime: ``t ∈ [8, n-1]`` divisible by 8.

    Raises:
        ValueError: outside the regime (use :func:`canonical_partition`
            for small-parameter experimentation).
    """
    if t < 8 or t % 8 != 0:
        raise ValueError(
            f"the paper's proof fixes t >= 8 divisible by 8, got t={t}"
        )
    return canonical_partition(n, t)
