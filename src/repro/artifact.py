"""One loader, one diagnostic: uniform artifact-file error handling.

Every persisted artifact family the repository reads back — run-ledger
JSONL files, trend logs, ``BENCH_<suite>.json`` trajectories, attack
certificates, world logs — used to hand-roll its own malformed-file
handling, each with a slightly different message shape.  This module is
the single chokepoint: a loader names the *kind* of artifact it expects
and supplies a parser; any parse failure becomes one
:class:`~repro.errors.ArtifactError` with the uniform one-liner

    ``<path>:<line>: not a <kind> (<ExcType>: <detail>)``

(line-oriented artifacts) or ``<path>: not a <kind> (...)`` (whole-
document artifacts).  The CLI maps :class:`ArtifactError` to exit 2 —
the file exists but is not the artifact it claims to be, an environment
failure, never a domain verdict.

>>> import tempfile, os
>>> with tempfile.TemporaryDirectory() as d:
...     path = os.path.join(d, "garbage.jsonl")
...     _ = open(path, "w").write("this is not json\\n")
...     try:
...         load_artifact_lines(path, "ledger event", __import__("json").loads)
...     except Exception as e:
...         print(type(e).__name__, ":1: not a ledger event" in str(e))
ArtifactError True
"""

from __future__ import annotations

import os
from typing import Any, Callable, TypeVar

from repro.errors import ArtifactError, ReproError

T = TypeVar("T")

_PARSE_FAILURES = (ValueError, KeyError, TypeError, ReproError)
"""What a parser may raise for malformed content (``json.JSONDecodeError``
is a ``ValueError``).  Anything else is a bug and propagates."""


def artifact_error(
    path: str,
    kind: str,
    error: BaseException,
    line: int | None = None,
) -> ArtifactError:
    """The uniform malformed-artifact diagnostic, ready to raise."""
    location = f"{path}:{line}" if line is not None else path
    article = "an" if kind[:1].lower() in "aeiou" else "a"
    return ArtifactError(
        f"{location}: not {article} {kind} "
        f"({type(error).__name__}: {error})"
    )


def load_artifact_lines(
    path: str,
    kind: str,
    parse: Callable[[str], T],
    *,
    missing_ok: bool = False,
) -> list[T]:
    """Parse a line-oriented (JSONL) artifact with uniform diagnostics.

    Blank lines are skipped.  ``parse`` receives each stripped line and
    may raise any of the standard parse failures (``ValueError``,
    ``KeyError``, ``TypeError``, :class:`ReproError`); the failure is
    rewrapped as the canonical ``file:line`` :class:`ArtifactError`.

    Args:
        path: the artifact file.
        kind: the human name of the expected record (``"ledger event"``,
            ``"trend point"``, ...) — appears verbatim in diagnostics.
        parse: ``line -> record``.
        missing_ok: return ``[]`` for a nonexistent file instead of
            raising ``OSError`` (trend logs start empty).

    Raises:
        ArtifactError: on any malformed line (CLI exit 2).
        OSError: if the file cannot be read (unless ``missing_ok``).
    """
    if missing_ok and not os.path.exists(path):
        return []
    records: list[T] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(parse(line))
            except _PARSE_FAILURES as exc:
                raise artifact_error(
                    path, kind, exc, line=number
                ) from exc
    return records


def load_artifact(
    path: str,
    kind: str,
    parse: Callable[[str], T],
) -> T:
    """Parse a whole-document artifact with the uniform diagnostic.

    Args:
        path: the artifact file.
        kind: the human name of the expected document
            (``"bench trajectory"``, ``"attack certificate"``, ...).
        parse: ``text -> document``; parse failures become the canonical
            :class:`ArtifactError` one-liner.

    Raises:
        ArtifactError: when the document does not parse (CLI exit 2).
        OSError: if the file cannot be read.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        return parse(text)
    except _PARSE_FAILURES as exc:
        raise artifact_error(path, kind, exc) from exc
