"""repro — executable reproduction of *All Byzantine Agreement Problems
are Expensive* (Civit, Gilbert, Guerraoui, Komatovic, Paramonov,
Vidigueira; PODC 2024).

The package turns the paper's mathematics into running code:

* :mod:`repro.sim` — the synchronous computational model of Appendix A
  (deterministic state machines, omission/Byzantine static adversaries,
  fragment/behavior/execution records with mechanical validity checks).
* :mod:`repro.crypto` — simulated idealized signatures (§5.1).
* :mod:`repro.omission` — the proof constructions: isolation
  (Definition 1), ``swap_omission`` (Algorithm 4), ``merge``
  (Algorithm 5), indistinguishability.
* :mod:`repro.lowerbound` — Theorem 2 as an attack pipeline that breaks
  any sub-quadratic weak consensus candidate with a machine-checkable
  violation witness.
* :mod:`repro.validity` — input configurations and validity properties
  (§4.1), containment relation (§4.2), triviality.
* :mod:`repro.solvability` — the containment condition and the general
  solvability theorem (Theorem 4), plus Theorem 5's boundary.
* :mod:`repro.reductions` — Algorithm 1 (weak consensus from anything
  non-trivial, zero messages) and Algorithm 2 (anything CC from IC).
* :mod:`repro.protocols` — Dolev–Strong, EIG, Phase King, interactive
  consistency, weak/strong consensus, external validity, and the
  sub-quadratic cheaters the lower bound devours.
* :mod:`repro.analysis` — sweeps, power-law fits and report tables.

Quickstart::

    from repro.protocols import silent_cheater_spec
    from repro.lowerbound import attack_weak_consensus

    outcome = attack_weak_consensus(silent_cheater_spec(n=16, t=8))
    print(outcome.render())          # a verified Agreement violation
"""

from repro.errors import (
    AdversaryError,
    ModelViolation,
    ProtocolViolation,
    ReproError,
    SignatureError,
    TrivialProblemError,
    UnsolvableProblemError,
)
from repro.types import Bit, Payload, ProcessId, Round

__version__ = "1.0.0"

__all__ = [
    "AdversaryError",
    "Bit",
    "ModelViolation",
    "Payload",
    "ProcessId",
    "ProtocolViolation",
    "ReproError",
    "Round",
    "SignatureError",
    "TrivialProblemError",
    "UnsolvableProblemError",
    "__version__",
]
