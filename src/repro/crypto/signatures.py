"""Simulated unforgeable signatures (§5.1, authenticated algorithms).

A :class:`Signature` is a keyed hash over a canonical encoding of the signed
content, bound to the signer's id.  Verification recomputes the tag from the
signer's key; within the simulation, code without the signer's
:class:`~repro.crypto.keys.SecretKey` cannot produce a verifying tag — the
idealized-signature abstraction ([30] in the paper).

Canonical encoding: the signed content must be built from hashable,
deterministic primitives (ints, strings, bytes, tuples, frozensets, and
signatures themselves); :func:`canonical_bytes` serializes them
deterministically, including across processes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Hashable

from repro.crypto.keys import KeyRegistry, SecretKey
from repro.errors import ReproError, SignatureError
from repro.types import ProcessId


def _set_element_order(value: frozenset) -> list:
    """Frozenset elements in the library's one canonical set order.

    Delegates to the :mod:`repro.sim.serialization` policy — elements
    sort by :func:`~repro.sim.serialization.canonical_json` of their
    :func:`~repro.sim.serialization.encode_payload` encoding — so the
    signing layer and the artifact codec canonicalize unordered
    collections identically (one sort-key policy, one frozenset
    canonicalization).  Values outside the codec's closed type set
    (``canonical_content`` extension objects) fall back to sorting by
    their own canonical byte encoding, which is equally
    hash-seed-independent.
    """
    from repro.sim.serialization import canonical_json, encode_payload

    def sort_key(element: Hashable) -> str:
        try:
            encoded = encode_payload(element)
        except ReproError:
            encoded = {
                "k": "opaque",
                "v": canonical_bytes(element).hex(),
            }
        return canonical_json(encoded)

    return sorted(value, key=sort_key)


def canonical_bytes(value: Hashable) -> bytes:
    """Deterministically serialize a signable value.

    Supports ``None``, bools, ints, strings, bytes, tuples, frozensets and
    :class:`Signature` objects (so signature chains can be counter-signed).
    Frozensets are serialized in the library's one canonical set order
    (the :mod:`repro.sim.serialization` sort-key policy, see
    :func:`_set_element_order`), making the encoding independent of hash
    randomization — and identical in element order to the serialization
    codec's ``fset`` records.

    Type-strictness note: the encoding distinguishes ``True`` from ``1``
    and ``False`` from ``0`` (booleans get their own tag) — safer for
    signatures than inheriting Python's numeric-equality collapse.  The
    flip side: two frozensets that Python deems *equal* but that were
    built with a bool in one and the equal int in the other (e.g.
    ``frozenset({False})`` vs ``frozenset({0})``) encode differently;
    signable content should not mix bools and equal ints inside sets.

    Raises:
        SignatureError: for unsupported value types.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return b"B" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, str):
        encoded = value.encode()
        return b"S" + str(len(encoded)).encode() + b":" + encoded
    if isinstance(value, (bytes, bytearray)):
        return b"Y" + str(len(value)).encode() + b":" + bytes(value)
    if isinstance(value, Signature):
        return (
            b"G"
            + canonical_bytes(value.signer)
            + value.tag
        )
    if isinstance(value, tuple):
        parts = b"".join(canonical_bytes(element) for element in value)
        return b"T" + str(len(value)).encode() + b":" + parts
    if isinstance(value, frozenset):
        encoded = [
            canonical_bytes(element)
            for element in _set_element_order(value)
        ]
        return b"F" + str(len(encoded)).encode() + b":" + b"".join(encoded)
    content_method = getattr(value, "canonical_content", None)
    if callable(content_method):
        # Extension point: domain objects (e.g. transactions) expose their
        # signable structure without this module depending on them.
        return b"O" + canonical_bytes(content_method())
    raise SignatureError(
        f"cannot canonically encode value of type {type(value).__name__}"
    )


@dataclass(frozen=True, slots=True)
class Signature:
    """A signature of ``signer`` over some content.

    The content itself is not stored (the protocol carries it separately);
    :meth:`SignatureScheme.verify` recomputes the expected tag from the
    claimed content.
    """

    signer: ProcessId
    tag: bytes

    def __repr__(self) -> str:
        return f"Signature(signer={self.signer}, tag={self.tag[:4].hex()}…)"


class SignatureScheme:
    """Sign/verify front-end over a :class:`KeyRegistry`.

    Verification needs no secrets (the registry re-derives keys), so every
    process may hold the scheme; *signing* requires presenting the signer's
    secret key, which honest machines only hold for themselves.
    """

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry

    @property
    def registry(self) -> KeyRegistry:
        """The underlying key registry."""
        return self._registry

    def sign(self, key: SecretKey, content: Hashable) -> Signature:
        """Sign ``content`` with ``key``.

        Raises:
            SignatureError: if the content cannot be canonically encoded.
        """
        tag = hmac.new(
            key.material, canonical_bytes(content), hashlib.sha256
        ).digest()
        return Signature(signer=key.owner, tag=tag)

    def verify(self, signature: Signature, content: Hashable) -> bool:
        """Whether ``signature`` is a valid signature of its claimed signer
        over ``content``.

        Structural problems (unknown signer id, unencodable content) are
        treated as verification failure, matching how a real verifier
        rejects malformed inputs rather than crashing.
        """
        try:
            key = self._registry.secret_key(signature.signer)
            expected = hmac.new(
                key.material, canonical_bytes(content), hashlib.sha256
            ).digest()
        except SignatureError:
            return False
        return hmac.compare_digest(signature.tag, expected)

    def signer_for(self, pid: ProcessId) -> "Signer":
        """A signing capability for ``pid`` (trusted distribution point)."""
        return Signer(self, self._registry.secret_key(pid))


class Signer:
    """The signing capability of a single process.

    Honest machines receive exactly one :class:`Signer` — their own.  A
    Byzantine adversary receives the signers of corrupted processes only.
    """

    def __init__(self, scheme: SignatureScheme, key: SecretKey) -> None:
        self._scheme = scheme
        self._key = key

    @property
    def pid(self) -> ProcessId:
        """The process this capability signs for."""
        return self._key.owner

    def sign(self, content: Hashable) -> Signature:
        """Sign ``content`` as this process."""
        return self._scheme.sign(self._key, content)

    def verify(self, signature: Signature, content: Hashable) -> bool:
        """Verify an arbitrary signature (verification is public)."""
        return self._scheme.verify(signature, content)
