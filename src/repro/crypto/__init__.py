"""Simulated authentication substrate (idealized signatures, §5.1).

Provides deterministic per-process keys, HMAC-style unforgeable-in-sim
signatures, and Dolev–Strong signature chains.  The substitution rationale
(paper's idealized signatures → keyed hashes inside a closed simulation) is
documented in DESIGN.md §1.
"""

from repro.crypto.chains import SignedChain, start_chain, verify_chain
from repro.crypto.keys import KeyRegistry, SecretKey
from repro.crypto.signatures import (
    Signature,
    SignatureScheme,
    Signer,
    canonical_bytes,
)

__all__ = [
    "KeyRegistry",
    "SecretKey",
    "Signature",
    "SignatureScheme",
    "SignedChain",
    "Signer",
    "canonical_bytes",
    "start_chain",
    "verify_chain",
]
