"""Signature chains for Dolev–Strong style broadcast ([52] in the paper).

A *k-chain* on a value ``v`` for a designated sender ``s`` is a sequence of
signatures by ``k`` distinct processes, the first of which is ``s``, where
the ``i``-th signature covers the value together with the first ``i-1``
signatures.  The Dolev–Strong invariant is: a value accompanied by a valid
k-chain seen in round ``k`` was vouched for by at least ``k`` distinct
processes, at least one of which is correct once ``k > t`` — the basis of
its ``t+1``-round authenticated broadcast for any ``t < n``.

Chains are immutable; :meth:`SignedChain.extend` returns a longer chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.crypto.signatures import Signature, SignatureScheme, Signer
from repro.types import ProcessId

_DOMAIN = "ds-chain"


def _chain_content(
    instance: Hashable, value: Hashable, prefix: tuple[Signature, ...]
) -> tuple:
    """The canonical content covered by the next signature in a chain."""
    return (_DOMAIN, instance, value, prefix)


@dataclass(frozen=True, slots=True)
class SignedChain:
    """A signature chain on ``value`` within a broadcast ``instance``.

    Attributes:
        instance: domain-separation tag of the broadcast instance (so
            chains cannot be replayed across parallel broadcasts, e.g. the
            n instances inside interactive consistency).
        value: the value being vouched for.
        signatures: the chain, in signing order.
    """

    instance: Hashable
    value: Hashable
    signatures: tuple[Signature, ...]

    def __len__(self) -> int:
        return len(self.signatures)

    @property
    def signers(self) -> tuple[ProcessId, ...]:
        """The ids of the chain's signers, in order."""
        return tuple(signature.signer for signature in self.signatures)

    def has_signer(self, pid: ProcessId) -> bool:
        """Whether ``pid`` already appears in the chain."""
        return any(
            signature.signer == pid for signature in self.signatures
        )

    def extend(self, signer: Signer) -> "SignedChain":
        """Append ``signer``'s signature over the current chain.

        Raises:
            ValueError: if the signer already appears (chains require
                distinct signers; re-signing adds no information).
        """
        if self.has_signer(signer.pid):
            raise ValueError(
                f"p{signer.pid} already signed this chain"
            )
        signature = signer.sign(
            _chain_content(self.instance, self.value, self.signatures)
        )
        return SignedChain(
            instance=self.instance,
            value=self.value,
            signatures=self.signatures + (signature,),
        )


def start_chain(
    signer: Signer, instance: Hashable, value: Hashable
) -> SignedChain:
    """The 1-chain a designated sender creates over its value."""
    signature = signer.sign(_chain_content(instance, value, ()))
    return SignedChain(
        instance=instance, value=value, signatures=(signature,)
    )


def verify_chain(
    scheme: SignatureScheme,
    chain: SignedChain,
    designated_sender: ProcessId,
    minimum_length: int = 1,
) -> bool:
    """Verify a chain's structure and every signature in it.

    A valid chain (1) is at least ``minimum_length`` long, (2) starts with
    the designated sender's signature, (3) has pairwise-distinct signers,
    and (4) has every signature verify over the value plus the preceding
    prefix.  Returns ``False`` (never raises) on any defect, so Byzantine
    garbage degrades to "ignore".
    """
    signatures = chain.signatures
    if len(signatures) < max(1, minimum_length):
        return False
    if signatures[0].signer != designated_sender:
        return False
    signers = [signature.signer for signature in signatures]
    if len(signers) != len(set(signers)):
        return False
    for index, signature in enumerate(signatures):
        content = _chain_content(
            chain.instance, chain.value, signatures[:index]
        )
        if not scheme.verify(signature, content):
            return False
    return True
