"""Per-process signing keys for the simulated authenticated setting (§5.1).

The paper's authenticated algorithms assume idealized digital signatures:
a process can sign its messages such that no other process can forge the
signature.  We realize the abstraction inside the closed simulation with a
:class:`KeyRegistry` holding one secret key per process; signatures are
keyed hashes (HMAC-style), so producing a valid signature for ``pid``
requires ``pid``'s secret.  The simulator hands the adversary only the keys
of *corrupted* processes, which is precisely the idealized-signature
guarantee: Byzantine processes can sign as themselves but never as a
correct process.

Keys are derived deterministically from a registry seed, keeping whole
executions reproducible (the determinism contract of the model).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SignatureError
from repro.types import ProcessId


@dataclass(frozen=True, slots=True)
class SecretKey:
    """An opaque signing key for one process.

    Holding a :class:`SecretKey` is the capability to sign for its
    ``owner``; the registry never exposes keys of non-corrupted processes
    to adversary code.
    """

    owner: ProcessId
    material: bytes

    def __repr__(self) -> str:  # never leak key material in logs
        return f"SecretKey(owner={self.owner})"


class KeyRegistry:
    """Deterministic key generation and distribution for one system.

    Args:
        n: number of processes.
        seed: domain-separation seed; two registries with equal ``(n,
            seed)`` issue identical keys, so re-instantiated machines can
            re-derive their signatures (determinism of the model).
    """

    def __init__(self, n: int, seed: bytes | str = b"repro") -> None:
        if n < 1:
            raise ValueError(f"need at least one process, got n={n}")
        if isinstance(seed, str):
            seed = seed.encode()
        self._n = n
        self._seed = bytes(seed)

    @property
    def n(self) -> int:
        """The number of processes keys exist for."""
        return self._n

    def secret_key(self, pid: ProcessId) -> SecretKey:
        """The secret key of ``pid``.

        Trusted callers only: the simulator gives each honest machine its
        own key and gives the adversary the keys of corrupted processes.

        Raises:
            SignatureError: for unknown process ids.
        """
        if not 0 <= pid < self._n:
            raise SignatureError(f"no key for process {pid} (n={self._n})")
        material = hashlib.sha256(
            b"key|" + self._seed + b"|" + str(pid).encode()
        ).digest()
        return SecretKey(owner=pid, material=material)

    def corrupted_keys(
        self, corrupted: Iterable[ProcessId]
    ) -> dict[ProcessId, SecretKey]:
        """The key material an adversary corrupting ``corrupted`` learns."""
        return {pid: self.secret_key(pid) for pid in corrupted}
