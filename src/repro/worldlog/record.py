"""The typed record envelope every world-log line carries.

A :class:`Record` is the one wire format of the world log: a monotone
``tick`` (the log's total order), a ``kind`` from :data:`KINDS`, the
``run_id`` / ``cell_id`` / ``worker_id`` correlation triple the run
ledger established, and a JSON-safe ``payload`` whose key order is
preserved *verbatim* — derived views re-render payloads byte-for-byte,
so the envelope must not re-sort what a writer serialized.

Two renderings:

* :meth:`Record.to_json` — the persisted JSONL line (fixed envelope key
  order, payload verbatim);
* :meth:`Record.canonical` — the :func:`~repro.sim.serialization
  .canonical_json` form (sorted keys, tight separators) for digests and
  cross-log comparison.

:func:`log_order_signature` generalizes the run ledger's
``order_signature`` to whole logs: the backend- and wall-clock-
independent ``(kind, name, cell_id)`` sequence.

>>> record = Record(tick=0, kind="log.open",
...                 payload={"schema": WORLDLOG_SCHEMA}, run_id="demo")
>>> print(record.to_json())
{"tick": 0, "kind": "log.open", "run_id": "demo", "cell_id": null, "worker_id": 0, "payload": {"schema": "repro.worldlog/v1"}}
>>> Record.from_json(record.to_json()) == record
True
>>> log_order_signature([record])
[('log.open', None, None)]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.serialization import canonical_json

WORLDLOG_SCHEMA = "repro.worldlog/v1"
"""The schema tag carried by every log's opening record."""

KINDS = (
    "log.open",
    "sweep.plan",
    "gather.start",
    "ledger.event",
    "cell.result",
    "cell.error",
    "checkpoint",
    "cert.artifact",
    "bench.point",
    "trend.point",
    "job.submitted",
    "job.start",
    "job.result",
    "job.error",
    "job.rejected",
    "telemetry.snapshot",
)
"""The typed record vocabulary, in documentation order.

* ``log.open`` — the header: schema tag plus the run id; always tick 0.
* ``sweep.plan`` — the full job matrix of a scheduled sweep (one record
  per run; resume verifies the plan matches before skipping cells).
* ``gather.start`` — marks the start of a sweep's gather step; the
  ledger view reads events after the *last* marker, so a crash during a
  gather never duplicates events in the derived view.
* ``ledger.event`` — one :class:`~repro.obs.ledger.LedgerEvent`,
  mirrored verbatim as it lands in the live run ledger.
* ``cell.result`` / ``cell.error`` — a sweep cell's terminal record
  (the crash-resume unit): the full decoded-or-decodable job result, or
  the structured failure.
* ``checkpoint`` — an in-band driver checkpoint note (fault-free run
  snapshotted for Lemma-4 prefix resume).
* ``cert.artifact`` — a portable attack certificate, carried as its
  canonical JSON text.
* ``bench.point`` / ``trend.point`` — one benchmark-observatory point /
  one perf-trend point, payloads exactly as their legacy writers
  serialize them.
* ``job.submitted`` / ``job.start`` / ``job.result`` / ``job.error`` —
  the attack service's job lifecycle (:mod:`repro.service`): one
  acceptance record per idempotent job key, an optional start marker
  per execution attempt, and **exactly one** terminal record per
  accepted job — the invariant a killed-and-restarted ``repro serve``
  resumes on.  The ``jobs`` derived view renders these as the
  ``jobs.json`` manifest.
* ``job.rejected`` — a quota/rate rejection at admission time: key,
  tenant, rejection kind and reason.  Pure observability (``repro log
  stats`` folds these into per-tenant rejection counts): a rejected
  submission enters no queue, charges no quota, and is ignored by the
  recovery fold and the jobs manifest.
* ``telemetry.snapshot`` — one sampled :class:`~repro.obs.telemetry
  .TelemetryBus` snapshot: the live metrics registry, sweep-progress
  accounting and round-tap rates folded into a single record.  Pure
  observability like ``job.rejected``: ignored by the recovery fold,
  the jobs manifest and sweep resume, and dropped by the semantic
  differ (:func:`~repro.worldlog.diffing.comparable_records`), so runs
  with and without telemetry stay semantically identical.
"""


@dataclass(frozen=True)
class Record:
    """One world-log line: envelope plus verbatim payload.

    Attributes:
        tick: the record's position in the log's total order (monotone,
            0-based, assigned by the :class:`~repro.worldlog.store
            .WorldLog` appender).
        kind: one of :data:`KINDS`.
        payload: the JSON-safe body; dict key order is preserved through
            persistence (views depend on it for byte-identity).
        run_id: the top-level run that appended the record.
        cell_id: the sweep cell the record belongs to (``None`` outside
            cells).
        worker_id: the OS process id of the appender.
    """

    tick: int
    kind: str
    payload: Any
    run_id: str = ""
    cell_id: str | None = None
    worker_id: int = 0

    def to_json(self) -> str:
        """The persisted JSONL line (envelope keys fixed, payload verbatim)."""
        return json.dumps(
            {
                "tick": self.tick,
                "kind": self.kind,
                "run_id": self.run_id,
                "cell_id": self.cell_id,
                "worker_id": self.worker_id,
                "payload": self.payload,
            }
        )

    def canonical(self) -> str:
        """The canonical-JSON rendering (for digests, never persisted)."""
        return canonical_json(
            {
                "tick": self.tick,
                "kind": self.kind,
                "run_id": self.run_id,
                "cell_id": self.cell_id,
                "worker_id": self.worker_id,
                "payload": self.payload,
            }
        )

    @property
    def align_key(self) -> tuple[str, str | None, str | None]:
        """The wall-clock-independent alignment key ``(kind, name, cell_id)``.

        One element of :func:`log_order_signature`; the key the
        semantic differ (:mod:`repro.worldlog.diffing`) aligns two
        logs by, so ticks and timestamps never count as divergence.
        """
        return (self.kind, self.name, self.cell_id)

    @property
    def name(self) -> str | None:
        """The payload's ``name`` field, when it carries one.

        ``ledger.event`` payloads always do; other kinds usually don't.
        The order signature uses this as its middle component.
        """
        if isinstance(self.payload, dict):
            name = self.payload.get("name")
            if isinstance(name, str):
                return name
        return None

    @classmethod
    def from_json(cls, line: str) -> "Record":
        """Parse one persisted line back into a record."""
        raw = json.loads(line)
        if not isinstance(raw, dict):
            raise ValueError("world-log record is not an object")
        record = cls(
            tick=raw["tick"],
            kind=raw["kind"],
            payload=raw["payload"],
            run_id=raw.get("run_id", ""),
            cell_id=raw.get("cell_id"),
            worker_id=raw.get("worker_id", 0),
        )
        if not isinstance(record.tick, int) or not isinstance(
            record.kind, str
        ):
            raise ValueError("world-log envelope fields have wrong types")
        return record


def log_order_signature(
    records: Iterable[Record],
) -> list[tuple[str, str | None, str | None]]:
    """The wall-clock-independent record order: ``(kind, name, cell_id)``.

    Generalizes :func:`repro.obs.ledger.order_signature` from ledger
    events to whole logs: ticks, timestamps, worker ids and run ids
    legitimately differ between backends and between interrupted-and-
    resumed versus uninterrupted runs; this sequence must not.
    """
    return [record.align_key for record in records]
