"""Time-travel replay: step any world log and ask "what was known?".

The world log is a total order of records; everything the system ever
derived from a run — the live ledger, the job manifest, the bound
accounting — is a fold over a prefix of that order.  This module makes
the fold explicit:

* :func:`replay_state` — the pure fold: records in, one
  :class:`ReplayState` out.  This is the *definition* of "the state at
  tick T"; every derived view of a prefix must agree with it
  (``tests/worldlog/test_replay.py`` pins that theorem against the
  golden fixture).
* :class:`ReplayCursor` — the navigable form: ``next()`` / ``prev()`` /
  ``seek(tick)`` over one log, with periodic state snapshots so
  stepping backwards re-folds from the nearest snapshot instead of
  from tick 0.  ``repro log replay`` drives it from the CLI.
* :func:`select_records` — the shared record-selection logic behind
  ``repro log show --kind/--cell/--run/--tail``.
* :func:`log_stats` — post-hoc metric extraction: new metrics computed
  from old logs without any schema migration, emitted in the same JSON
  shape the ``report --trend`` comparison policy consumes.

The state mirrors the derived-view semantics exactly: event-derived
fields (span stacks, counters, gauges, round accounting) reset at every
``gather.start`` marker, because the ledger view reads events after the
*last* marker — a cursor positioned mid-crash sees exactly what a
derive at that prefix would have seen.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.worldlog.record import Record

STATS_SCHEMA = "repro.logstats/v1"
"""The schema tag of the ``repro log stats`` document."""

SNAPSHOT_EVERY = 256
"""Default record interval between cursor state snapshots."""


def select_records(
    records: Iterable[Record],
    kinds: Iterable[str] | None = None,
    cells: Iterable[str] | None = None,
    runs: Iterable[str] | None = None,
    tail: int | None = None,
) -> list[Record]:
    """Filter a record sequence by kind / cell / run, then keep a tail.

    The selection logic behind ``repro log show``: every filter is a
    set-membership test on the envelope (``None`` disables it), applied
    before ``tail`` keeps the last *N* survivors — so
    ``--kind ledger.event --tail 5`` means "the last five events", not
    "events among the last five records".

    Streams: with ``tail`` set, survivors flow through a bounded
    ``collections.deque`` instead of being materialized, so a
    ``--tail 5`` over a million-record log holds five records, not a
    million (``tests/worldlog/test_replay.py`` pins that with a lazy
    record source).
    """
    kind_set = set(kinds) if kinds is not None else None
    cell_set = set(cells) if cells is not None else None
    run_set = set(runs) if runs is not None else None
    selected = (
        record
        for record in records
        if (kind_set is None or record.kind in kind_set)
        and (cell_set is None or record.cell_id in cell_set)
        and (run_set is None or record.run_id in run_set)
    )
    if tail is not None and tail >= 0:
        if tail == 0:
            return []
        return list(deque(selected, maxlen=tail))
    return list(selected)


@dataclass
class ReplayState:
    """Everything the system knew after applying a record prefix.

    Event-derived fields (``events`` through ``vs_floor``) mirror the
    derived ledger view: they reset on every ``gather.start`` marker,
    so they always describe events after the *last* marker seen.
    Envelope-derived fields (plans, terminals, jobs, certificates,
    checkpoints) accumulate over the whole prefix, exactly like their
    manifest views.
    """

    tick: int = -1
    position: int = 0
    run_id: str = ""
    kind_counts: dict[str, int] = field(default_factory=dict)

    # sweep bookkeeping (whole prefix)
    planned_cells: int | None = None
    completed_cells: dict[int, str | None] = field(default_factory=dict)
    errored_cells: dict[int, str | None] = field(default_factory=dict)
    cells_seen: set[str] = field(default_factory=set)
    cells_terminal: set[str] = field(default_factory=set)

    # service bookkeeping (whole prefix)
    jobs: dict[str, dict[str, Any]] = field(default_factory=dict)
    rejections: dict[str, dict[str, int]] = field(default_factory=dict)

    # artifact bookkeeping (whole prefix)
    certificates: list[str] = field(default_factory=list)
    checkpoints: int = 0

    # observability bookkeeping (whole prefix; never feeds semantics)
    telemetry_snapshots: int = 0
    last_telemetry: dict[str, Any] | None = None

    # event-derived state (after the last gather.start marker)
    gathers: int = 0
    events: list[dict[str, Any]] = field(default_factory=list)
    span_stacks: dict[tuple[int, str | None], list[str]] = field(
        default_factory=dict
    )
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    rounds_observed: int = 0
    messages_observed: float = 0.0
    vs_floor: float | None = None

    @property
    def live_cells(self) -> list[str]:
        """Cells that have appeared but have no terminal record yet."""
        return sorted(self.cells_seen - self.cells_terminal)

    @property
    def pending_jobs(self) -> list[str]:
        """Service job keys accepted but not yet terminal, in order."""
        return [
            key
            for key, entry in self.jobs.items()
            if entry["state"] in ("queued", "running")
        ]

    @property
    def open_spans(self) -> list[tuple[int, str | None, list[str]]]:
        """Per-stream open span stacks: ``(worker, cell, names)``."""
        return [
            (worker, cell, list(stack))
            for (worker, cell), stack in sorted(
                self.span_stacks.items(),
                key=lambda item: (item[0][0], item[0][1] or ""),
            )
            if stack
        ]

    def clone(self) -> "ReplayState":
        """An independent copy (snapshot material for the cursor)."""
        return ReplayState(
            tick=self.tick,
            position=self.position,
            run_id=self.run_id,
            kind_counts=dict(self.kind_counts),
            planned_cells=self.planned_cells,
            completed_cells=dict(self.completed_cells),
            errored_cells=dict(self.errored_cells),
            cells_seen=set(self.cells_seen),
            cells_terminal=set(self.cells_terminal),
            jobs={key: dict(entry) for key, entry in self.jobs.items()},
            rejections={
                tenant: dict(kinds)
                for tenant, kinds in self.rejections.items()
            },
            certificates=list(self.certificates),
            checkpoints=self.checkpoints,
            telemetry_snapshots=self.telemetry_snapshots,
            last_telemetry=(
                dict(self.last_telemetry)
                if self.last_telemetry is not None
                else None
            ),
            gathers=self.gathers,
            events=list(self.events),
            span_stacks={
                stream: list(stack)
                for stream, stack in self.span_stacks.items()
            },
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            rounds_observed=self.rounds_observed,
            messages_observed=self.messages_observed,
            vs_floor=self.vs_floor,
        )

    def apply(self, record: Record) -> None:
        """Fold one record into the state, in log order."""
        self.tick = record.tick
        self.position += 1
        self.kind_counts[record.kind] = (
            self.kind_counts.get(record.kind, 0) + 1
        )
        if record.cell_id is not None:
            self.cells_seen.add(record.cell_id)
        payload = record.payload
        kind = record.kind

        if kind == "log.open":
            self.run_id = record.run_id
        elif kind == "sweep.plan":
            jobs = payload.get("jobs") if isinstance(payload, dict) else None
            self.planned_cells = len(jobs) if isinstance(jobs, list) else 0
        elif kind == "gather.start":
            # The ledger view reads events after the *last* marker:
            # everything event-derived starts over.
            self.gathers += 1
            self.events = []
            self.span_stacks = {}
            self.counters = {}
            self.gauges = {}
            self.rounds_observed = 0
            self.messages_observed = 0.0
            self.vs_floor = None
        elif kind == "ledger.event":
            self._apply_event(payload)
        elif kind == "cell.result":
            self.completed_cells[payload["index"]] = record.cell_id
            if record.cell_id is not None:
                self.cells_terminal.add(record.cell_id)
        elif kind == "cell.error":
            self.errored_cells[payload["index"]] = record.cell_id
            if record.cell_id is not None:
                self.cells_terminal.add(record.cell_id)
        elif kind == "checkpoint":
            self.checkpoints += 1
        elif kind == "cert.artifact":
            self.certificates.append(payload["label"])
        elif kind == "job.submitted":
            self.jobs[payload["key"]] = {
                "key": payload["key"],
                "tenant": payload["tenant"],
                "priority": payload["priority"],
                "state": "queued",
            }
        elif kind == "job.start":
            entry = self.jobs.get(payload["key"])
            if entry is not None and entry["state"] == "queued":
                entry["state"] = "running"
        elif kind == "job.result":
            entry = self.jobs.get(payload["key"])
            if entry is not None:
                entry["state"] = "done"
            if record.cell_id is not None:
                self.cells_terminal.add(record.cell_id)
        elif kind == "job.error":
            entry = self.jobs.get(payload["key"])
            if entry is not None:
                entry["state"] = "failed"
            if record.cell_id is not None:
                self.cells_terminal.add(record.cell_id)
        elif kind == "job.rejected":
            tenant = payload.get("tenant", "default")
            by_kind = self.rejections.setdefault(tenant, {})
            reason_kind = payload.get("kind", "rejected")
            by_kind[reason_kind] = by_kind.get(reason_kind, 0) + 1
            if record.cell_id is not None:
                # A rejection opens no cell: it never goes terminal.
                self.cells_terminal.add(record.cell_id)
        elif kind == "telemetry.snapshot":
            # Observability only: remember the latest sample, touch
            # nothing semantic (a telemetry-on prefix must replay to
            # the same state as its telemetry-off twin, modulo these
            # two fields).
            self.telemetry_snapshots += 1
            if isinstance(payload, dict):
                self.last_telemetry = payload

    def _apply_event(self, payload: dict[str, Any]) -> None:
        self.events.append(payload)
        kind = payload.get("kind")
        name = payload.get("name")
        if kind in ("span-start", "span-end"):
            stream = (
                payload.get("worker_id", 0),
                payload.get("cell_id"),
            )
            stack = self.span_stacks.setdefault(stream, [])
            if kind == "span-start":
                stack.append(name)
            else:
                while stack:
                    if stack.pop() == name:
                        break
        elif kind == "counter":
            value = payload.get("value") or 0
            self.counters[name] = self.counters.get(name, 0) + value
            if name == "engine.round":
                self.rounds_observed += 1
                self.messages_observed += value
                attrs = payload.get("attrs") or {}
                if "vs_floor" in attrs:
                    self.vs_floor = attrs["vs_floor"]
        elif kind == "gauge":
            self.gauges[name] = payload.get("value")
            if name == "bound.vs_floor":
                self.vs_floor = payload.get("value")


def replay_state(records: Iterable[Record]) -> ReplayState:
    """The pure fold: the state after applying every given record."""
    state = ReplayState()
    for record in records:
        state.apply(record)
    return state


class ReplayCursor:
    """Navigate one log record-by-record with materialized state.

    The cursor's *position* is the number of records applied; its
    :attr:`state` is exactly ``replay_state(records[:position])`` at
    all times (the invariant the replay tests pin).  Forward motion is
    an incremental fold; backward motion restores the nearest earlier
    snapshot (taken every ``snapshot_every`` records) and re-folds the
    remainder, so ``prev()`` over a large log never re-reads tick 0.
    """

    def __init__(
        self,
        records: Sequence[Record],
        snapshot_every: int = SNAPSHOT_EVERY,
    ) -> None:
        self.records = list(records)
        self.snapshot_every = max(1, snapshot_every)
        self._ticks = [record.tick for record in self.records]
        self._snapshots: dict[int, ReplayState] = {0: ReplayState()}
        self.state = ReplayState()
        self.position = 0

    def __len__(self) -> int:
        return len(self.records)

    @property
    def current(self) -> Record | None:
        """The most recently applied record (``None`` at position 0)."""
        if self.position == 0:
            return None
        return self.records[self.position - 1]

    def next(self) -> Record | None:
        """Apply the next record; ``None`` at the end of the log."""
        if self.position >= len(self.records):
            return None
        record = self.records[self.position]
        self.state.apply(record)
        self.position += 1
        if (
            self.position % self.snapshot_every == 0
            and self.position not in self._snapshots
        ):
            self._snapshots[self.position] = self.state.clone()
        return record

    def prev(self) -> Record | None:
        """Un-apply the last record; ``None`` at the start of the log."""
        if self.position == 0:
            return None
        record = self.records[self.position - 1]
        self._goto(self.position - 1)
        return record

    def seek(self, tick: int) -> ReplayState:
        """Position after the last record with ``record.tick <= tick``.

        Ticks are monotone, so this is a bisection; seeking past the
        end lands at the end, seeking before tick 0 lands at the empty
        state.  Returns the materialized state at that position.
        """
        self._goto(bisect_right(self._ticks, tick))
        return self.state

    def _goto(self, position: int) -> None:
        position = max(0, min(position, len(self.records)))
        if position < self.position:
            base = max(
                spot for spot in self._snapshots if spot <= position
            )
            self.state = self._snapshots[base].clone()
            self.position = base
        while self.position < position:
            self.next()


def render_state(state: ReplayState, total: int | None = None) -> str:
    """The human rendering of one cursor position (``repro log replay``)."""
    where = f"{state.position} record(s) applied"
    if total is not None:
        where = f"{state.position}/{total} record(s) applied"
    lines = [
        f"tick {state.tick} — {where}, run {state.run_id or '-'}"
    ]
    if state.kind_counts:
        lines.append(
            "records: "
            + "  ".join(
                f"{kind}×{count}"
                for kind, count in sorted(state.kind_counts.items())
            )
        )
    if state.planned_cells is not None:
        lines.append(
            f"sweep: {state.planned_cells} planned, "
            f"{len(state.completed_cells)} completed, "
            f"{len(state.errored_cells)} errored"
            + (f", {state.gathers} gather(s)" if state.gathers else "")
        )
    live = state.live_cells
    lines.append(
        "live cells: " + (", ".join(live) if live else "(none)")
    )
    if state.jobs:
        pending = state.pending_jobs
        lines.append(
            f"jobs: {len(state.jobs)} accepted, "
            f"{len(pending)} pending"
            + (
                " — " + ", ".join(key[:8] for key in pending)
                if pending
                else ""
            )
        )
    for tenant, by_kind in sorted(state.rejections.items()):
        parts = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(by_kind.items())
        )
        lines.append(f"rejections: tenant {tenant}: {parts}")
    spans = state.open_spans
    if spans:
        lines.append("open spans:")
        for worker, cell, names in spans:
            lines.append(
                f"  worker {worker} · {cell or '-'}: "
                + " > ".join(names)
            )
    if state.rounds_observed:
        floor = (
            f", vs t²/32 floor {state.vs_floor:.3f}"
            if state.vs_floor is not None
            else ""
        )
        lines.append(
            f"rounds: {state.rounds_observed} traced, "
            f"{state.messages_observed:.0f} messages{floor}"
        )
    if state.counters:
        lines.append(
            "counters: "
            + "  ".join(
                f"{name}={value:g}"
                for name, value in sorted(state.counters.items())
            )
        )
    if state.certificates:
        lines.append("certificates: " + ", ".join(state.certificates))
    if state.checkpoints:
        lines.append(f"checkpoints: {state.checkpoints}")
    if state.telemetry_snapshots:
        last = state.last_telemetry or {}
        seq = last.get("seq")
        lines.append(
            f"telemetry: {state.telemetry_snapshots} snapshot(s)"
            + (f", last seq {seq}" if seq is not None else "")
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# post-hoc metric extraction
# ----------------------------------------------------------------------


def _event_cells(
    events: Sequence[dict[str, Any]],
) -> dict[str | None, list[dict[str, Any]]]:
    cells: dict[str | None, list[dict[str, Any]]] = {}
    for payload in events:
        cells.setdefault(payload.get("cell_id"), []).append(payload)
    return cells


def _cell_metrics(
    events: Sequence[dict[str, Any]],
) -> dict[str, float]:
    wall = None
    rounds = 0
    messages = 0.0
    for payload in events:
        kind, name = payload.get("kind"), payload.get("name")
        if kind == "gauge" and name == "cell.wall_seconds":
            wall = payload.get("value")
        elif kind == "counter" and name == "engine.round":
            rounds += 1
            messages += payload.get("value") or 0
    metrics = {"rounds": rounds, "messages": messages}
    if wall is not None:
        metrics["wall_seconds"] = wall
    return metrics


def log_stats(
    records: Sequence[Record], now: float | None = None
) -> dict[str, Any]:
    """Compute post-hoc metrics from an old log — no schema migration.

    The document's top level is shaped like a ``report --trend`` point
    (``label`` / ``wall_seconds`` / ``rounds_simulated`` / ``events`` /
    ``messages_observed`` / ``cache_hit_rate``), so
    :func:`repro.obs.report.trend_delta` can diff two extractions with
    the one comparison policy the trend log already uses.  Extra
    sections carry the metrics the legacy views never materialized:
    per-cell wall/round/message percentiles, flat span totals
    (certificate verify time is the ``witness-verify`` + ``certify``
    rows), and per-tenant job accounting including quota/rate
    rejections (``job.rejected`` records).
    """
    from repro.obs.report import (
        build_span_tree,
        cache_hit_rate,
        percentiles,
        span_totals,
    )
    from repro.worldlog.views import ledger_events

    state = replay_state(records)
    events = ledger_events(records)
    tree = build_span_tree(events)
    spans = span_totals(events)
    wall = sum(child.seconds for child in tree.children.values())

    per_cell = {
        cell: _cell_metrics(payloads)
        for cell, payloads in sorted(
            _event_cells(state.events).items(),
            key=lambda item: item[0] or "",
        )
        if cell is not None
    }

    rounds_simulated = state.counters.get("engine.rounds_simulated")
    if rounds_simulated is None:
        rounds_simulated = state.rounds_observed
    messages = state.gauges.get("bound.observed")
    if messages is None:
        messages = state.messages_observed

    tenants: dict[str, dict[str, Any]] = {}
    for entry in state.jobs.values():
        tenant = tenants.setdefault(
            entry["tenant"],
            {"submitted": 0, "done": 0, "failed": 0, "pending": 0},
        )
        tenant["submitted"] += 1
        state_name = entry["state"]
        if state_name == "done":
            tenant["done"] += 1
        elif state_name == "failed":
            tenant["failed"] += 1
        else:
            tenant["pending"] += 1
    for tenant_name, by_kind in state.rejections.items():
        tenant = tenants.setdefault(
            tenant_name,
            {"submitted": 0, "done": 0, "failed": 0, "pending": 0},
        )
        tenant["rejected"] = dict(sorted(by_kind.items()))

    document: dict[str, Any] = {
        "schema": STATS_SCHEMA,
        "label": f"log/{state.run_id or 'unknown'}",
        "records": len(records),
        "wall_seconds": wall,
        "rounds_simulated": int(rounds_simulated),
        "messages_observed": messages,
        "events": len(state.events),
        "cache_hit_rate": cache_hit_rate(events),
        "spans": spans,
        "tenants": tenants,
        "cells": per_cell,
        "percentiles": {
            metric: percentiles(
                [
                    cell[metric]
                    for cell in per_cell.values()
                    if metric in cell
                ]
            )
            for metric in ("wall_seconds", "rounds", "messages")
        },
    }
    if now is not None:
        document["ts"] = now
    if state.certificates:
        document["certificates"] = len(state.certificates)
        verify = sum(
            spans.get(name, {}).get("seconds", 0.0)
            for name in ("witness-verify", "certify")
        )
        document["certificate_verify_seconds"] = verify
    return document
