"""Crash-resume: reading a sweep's progress back out of its world log.

The resume contract (see ``docs/WORLDLOG.md``):

* the scheduler writes one ``sweep.plan`` record before running any
  cell — the full job matrix, so a resumed run can verify it is
  finishing *the same sweep*;
* each cell gets exactly one terminal record as it completes —
  ``cell.result`` (the full shipped job result) or ``cell.error`` (the
  structured failure);
* a resumed run skips every cell whose terminal record is present,
  replaying the recorded result into the normal gather path, and runs
  the rest — so the final report, certificates and spliced event order
  are bit-identical to an uninterrupted run.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ReproError
from repro.worldlog.codec import decode_job, decode_job_result
from repro.worldlog.record import Record


def sweep_plan(records: Iterable[Record]) -> list[Any] | None:
    """The recorded job matrix, rebuilt — or ``None`` if never planned."""
    for record in records:
        if record.kind == "sweep.plan":
            return [
                decode_job(entry)
                for entry in record.payload["jobs"]
            ]
    return None


def has_plan(records: Iterable[Record]) -> bool:
    """Whether the log already carries a ``sweep.plan`` record."""
    return any(record.kind == "sweep.plan" for record in records)


def check_plan(records: Iterable[Record], jobs: list[Any]) -> None:
    """Verify the submitted matrix matches the recorded plan.

    Raises:
        ReproError: when the log was written by a different sweep —
            resuming would silently mix incompatible cells.
    """
    recorded = sweep_plan(records)
    if recorded is None:
        return
    if recorded != jobs:
        raise ReproError(
            "world log records a different sweep plan "
            f"({len(recorded)} cell(s), first "
            f"{recorded[0].key if recorded else None!r}); refusing to "
            "resume a different matrix into it"
        )


def completed_results(records: Iterable[Record]) -> dict[int, Any]:
    """Decoded :class:`JobResult` per cell index with a ``cell.result``."""
    results: dict[int, Any] = {}
    for record in records:
        if record.kind == "cell.result":
            results[record.payload["index"]] = decode_job_result(
                record.payload["result"]
            )
    return results


def recorded_errors(records: Iterable[Record]) -> dict[int, Any]:
    """Recorded :class:`CellError` (plus wall time) per errored index."""
    from repro.parallel.scheduler import CellError

    errors: dict[int, Any] = {}
    for record in records:
        if record.kind == "cell.error":
            payload = record.payload
            errors[payload["index"]] = (
                CellError(
                    kind=payload["error_kind"],
                    message=payload["message"],
                    detail=payload.get("detail", ""),
                ),
                payload.get("wall_seconds", 0.0),
            )
    return errors
