"""Tick-aligned semantic diff of two world logs.

The lower bound's whole argument is indistinguishability between
executions, and the repository's strongest guarantees are phrased the
same way: the mask kernel and the object engine must produce the same
run, a SIGKILLed-and-resumed sweep must produce the same run as an
uninterrupted one.  "The same run" can never mean byte-equal logs —
ticks, timestamps, worker pids and run ids legitimately differ — so
this module defines what *semantic* equality is and reports the first
place two logs break it.

Alignment is by the wall-clock-independent key ``(kind, name, cell)``
(:attr:`~repro.worldlog.record.Record.align_key`), not by raw tick:
two logs align when their key sequences match position by position, so
timing-only divergence (different ticks, different durations) is
invisible by construction.  Before aligning, each log is normalized:

* ``gather.start`` markers are dropped, and ``ledger.event`` records
  before the *last* marker are dropped with them — exactly the derived
  ledger view's rule, so a resumed log (which re-splices all events
  after a fresh marker) aligns with its uninterrupted twin;
* observability-only records (:data:`OBSERVABILITY_KINDS`:
  ``job.rejected`` admission refusals and sampled
  ``telemetry.snapshot`` records) are dropped entirely — they land at
  timing- and load-dependent positions, so a telemetry-on run must
  align with its telemetry-off twin and a rate-limited submission
  burst must align with a patient one;
* payloads are scrubbed of wall-clock and identity fields
  (:data:`DROP_KEYS`, applied recursively) and of the values of
  wall-clock metrics (:data:`WALL_CLOCK_METRICS`).

What remains — record order, event names, counter values, certificate
bytes, results — is the run's semantic content, and any difference in
it is a real divergence worth a human's attention.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.worldlog.record import Record

DROP_KEYS = frozenset(
    {
        "ts",
        "seconds",
        "wall_seconds",
        "unix_time",
        "run_id",
        "worker_id",
        "stats",
        "memory",
        "fingerprint",
    }
)
"""Payload keys scrubbed recursively before comparison.

Wall-clock measurements (``ts`` / ``seconds`` / ``wall_seconds`` /
``unix_time``, plus the bench observatory's ``stats`` / ``memory`` /
``fingerprint`` blocks) and per-process identity (``run_id`` /
``worker_id``) differ between any two honest executions of the same
matrix; everything else must not.
"""

WALL_CLOCK_METRICS = frozenset(
    {"engine.round_seconds", "cell.wall_seconds"}
)
"""Ledger metrics whose *values* are wall-clock readings.

Their presence and order still compare (the run emitted them); their
measured values and min/max/total attributes do not.
"""

_TIMING_ATTRS = frozenset({"min", "max", "total", "mean"})

OBSERVABILITY_KINDS = frozenset({"job.rejected", "telemetry.snapshot"})
"""Record kinds that are pure observability and never count.

Both land at positions driven by wall clock and load — a quota
refusal depends on how fast a tenant hammered the socket, a telemetry
snapshot on where the sampling interval elapsed — so the differ drops
them the way it drops ``gather.start`` markers.  The contract is the
flip side of these records being ignored by ``recover_jobs``, the jobs
manifest and sweep resume: they may appear anywhere, or nowhere,
without changing what run the log describes.
"""


def scrub_payload(payload: Any) -> Any:
    """The payload with every wall-clock / identity field removed."""
    if isinstance(payload, dict):
        scrubbed = {
            key: scrub_payload(value)
            for key, value in payload.items()
            if key not in DROP_KEYS
        }
        if payload.get("name") in WALL_CLOCK_METRICS:
            scrubbed.pop("value", None)
            attrs = scrubbed.get("attrs")
            if isinstance(attrs, dict):
                scrubbed["attrs"] = {
                    key: value
                    for key, value in attrs.items()
                    if key not in _TIMING_ATTRS
                }
        return scrubbed
    if isinstance(payload, list):
        return [scrub_payload(item) for item in payload]
    return payload


def comparable_records(records: Sequence[Record]) -> list[Record]:
    """The semantically comparable subsequence of one log.

    Applies the derived ledger view's crash-safety rule to the diff:
    only ``ledger.event`` records after the last ``gather.start``
    marker count, and the markers themselves (one per gather *attempt*,
    so a resumed log has more) are dropped.  Observability-only
    records (:data:`OBSERVABILITY_KINDS`) are dropped with them.
    """
    last_gather = -1
    for index, record in enumerate(records):
        if record.kind == "gather.start":
            last_gather = index
    return [
        record
        for index, record in enumerate(records)
        if record.kind != "gather.start"
        and record.kind not in OBSERVABILITY_KINDS
        and not (record.kind == "ledger.event" and index < last_gather)
    ]


@dataclass(frozen=True)
class Divergence:
    """The first semantic difference between two aligned logs."""

    index: int
    reason: str
    a: Record | None
    b: Record | None

    def render(self, a_path: str = "a", b_path: str = "b") -> str:
        """Both sides of the divergence, payloads scrubbed and pretty."""
        lines = [
            f"first divergence at aligned record {self.index}: "
            f"{self.reason}"
        ]
        for label, record in ((a_path, self.a), (b_path, self.b)):
            if record is None:
                lines.append(f"--- {label}: (no record at this position)")
                continue
            lines.append(
                f"--- {label}: tick {record.tick} "
                f"key={record.align_key!r}"
            )
            lines.append(
                json.dumps(
                    scrub_payload(record.payload),
                    indent=2,
                    sort_keys=True,
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class LogDiff:
    """The outcome of one semantic log comparison."""

    compared: int
    skipped_a: int
    skipped_b: int
    divergence: Divergence | None

    @property
    def ok(self) -> bool:
        """Whether the two logs are semantically identical."""
        return self.divergence is None

    def render(self, a_path: str = "a", b_path: str = "b") -> str:
        if self.divergence is None:
            skipped = ""
            if self.skipped_a or self.skipped_b:
                skipped = (
                    f" ({self.skipped_a}+{self.skipped_b} timing-only "
                    "record(s) skipped)"
                )
            return (
                f"logs align: {self.compared} record(s) semantically "
                f"identical{skipped}"
            )
        return self.divergence.render(a_path, b_path)


def diff_logs(
    a_records: Sequence[Record], b_records: Sequence[Record]
) -> LogDiff:
    """Key-align two logs and report the first semantic divergence.

    Pure and total: never raises on content, returns a :class:`LogDiff`
    whose ``divergence`` is ``None`` exactly when the logs describe the
    same run.  The canonical empty-diff pairs — a log against itself,
    object-engine vs mask-kernel runs of one matrix, an uninterrupted
    sweep vs its SIGKILL-resumed twin — are pinned by
    ``tests/worldlog/test_diffing.py`` and the CI ``worldlog-replay``
    gates.
    """
    a_side = comparable_records(a_records)
    b_side = comparable_records(b_records)
    skipped_a = len(a_records) - len(a_side)
    skipped_b = len(b_records) - len(b_side)
    length = min(len(a_side), len(b_side))
    for index in range(length):
        a_record, b_record = a_side[index], b_side[index]
        if a_record.align_key != b_record.align_key:
            return LogDiff(
                compared=index,
                skipped_a=skipped_a,
                skipped_b=skipped_b,
                divergence=Divergence(
                    index=index,
                    reason=(
                        f"record order diverged: "
                        f"{a_record.align_key!r} vs "
                        f"{b_record.align_key!r}"
                    ),
                    a=a_record,
                    b=b_record,
                ),
            )
        if scrub_payload(a_record.payload) != scrub_payload(
            b_record.payload
        ):
            return LogDiff(
                compared=index,
                skipped_a=skipped_a,
                skipped_b=skipped_b,
                divergence=Divergence(
                    index=index,
                    reason=(
                        f"payloads diverged for key "
                        f"{a_record.align_key!r}"
                    ),
                    a=a_record,
                    b=b_record,
                ),
            )
    if len(a_side) != len(b_side):
        longer, label = (
            (a_side, "a") if len(a_side) > len(b_side) else (b_side, "b")
        )
        extra = longer[length]
        return LogDiff(
            compared=length,
            skipped_a=skipped_a,
            skipped_b=skipped_b,
            divergence=Divergence(
                index=length,
                reason=(
                    f"log {label} continues with "
                    f"{len(longer) - length} extra record(s), first "
                    f"key {extra.align_key!r}"
                ),
                a=extra if label == "a" else None,
                b=extra if label == "b" else None,
            ),
        )
    return LogDiff(
        compared=length,
        skipped_a=skipped_a,
        skipped_b=skipped_b,
        divergence=None,
    )
