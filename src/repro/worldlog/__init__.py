"""``repro.worldlog`` — the single append-only record store.

One run writes one *world log*: a tick-ordered JSONL sequence of typed
:class:`~repro.worldlog.record.Record` envelopes.  Everything the
repository used to persist separately — ledger events, attack
certificates, driver checkpoints, benchmark points, trend points — is a
*view* derived by scanning the log (:mod:`repro.worldlog.views`); the
log itself is the only thing any layer writes.  On top of the views sit
the time-travel tools: a replay cursor that materializes "what the
system knew at tick T" (:mod:`repro.worldlog.replay`), a tick-aligned
semantic differ (:mod:`repro.worldlog.diffing`), and post-hoc metric
extraction (:func:`~repro.worldlog.replay.log_stats`).  See
``docs/WORLDLOG.md`` for the contract.
"""

from repro.worldlog.diffing import LogDiff, diff_logs
from repro.worldlog.record import (
    KINDS,
    WORLDLOG_SCHEMA,
    Record,
    log_order_signature,
)
from repro.worldlog.replay import (
    ReplayCursor,
    ReplayState,
    log_stats,
    replay_state,
    select_records,
)
from repro.worldlog.store import (
    LogTailer,
    WorldLog,
    is_worldlog,
    read_records,
    read_worldlog,
)
from repro.worldlog.views import derive_views

__all__ = [
    "KINDS",
    "WORLDLOG_SCHEMA",
    "LogDiff",
    "LogTailer",
    "Record",
    "ReplayCursor",
    "ReplayState",
    "WorldLog",
    "derive_views",
    "diff_logs",
    "is_worldlog",
    "log_order_signature",
    "log_stats",
    "read_records",
    "read_worldlog",
    "replay_state",
    "select_records",
]
