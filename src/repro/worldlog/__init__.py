"""``repro.worldlog`` — the single append-only record store.

One run writes one *world log*: a tick-ordered JSONL sequence of typed
:class:`~repro.worldlog.record.Record` envelopes.  Everything the
repository used to persist separately — ledger events, attack
certificates, driver checkpoints, benchmark points, trend points — is a
*view* derived by scanning the log (:mod:`repro.worldlog.views`); the
log itself is the only thing any layer writes.  See
``docs/WORLDLOG.md`` for the contract.
"""

from repro.worldlog.record import (
    KINDS,
    WORLDLOG_SCHEMA,
    Record,
    log_order_signature,
)
from repro.worldlog.store import WorldLog, is_worldlog, read_worldlog
from repro.worldlog.views import derive_views

__all__ = [
    "KINDS",
    "WORLDLOG_SCHEMA",
    "Record",
    "WorldLog",
    "derive_views",
    "is_worldlog",
    "log_order_signature",
    "read_worldlog",
]
