"""One-shot import of legacy artifacts into a world log.

``repro log import`` keeps the object engine's existing artifacts
readable across the storage transition: each input file is sniffed for
which of the four legacy families it is — run-ledger JSONL, trend
JSONL, ``BENCH_<suite>.json`` trajectory, attack-certificate JSON — and
converted to the equivalent records.  Deriving the matching view from
the imported log reproduces the input byte-for-byte (the payloads are
carried verbatim), so importing is lossless and reversible.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.artifact import load_artifact, load_artifact_lines
from repro.errors import ArtifactError
from repro.worldlog.store import WorldLog


def sniff_family(path: str) -> str:
    """Which legacy family ``path`` holds.

    Returns one of ``"ledger"``, ``"trend"``, ``"bench"``,
    ``"certificate"``.

    Raises:
        ArtifactError: when the file matches no known family.
        OSError: when it cannot be read.
    """
    from repro.certify.format import CERTIFICATE_FORMAT
    from repro.obs.bench import BENCH_SCHEMA
    from repro.obs.ledger import EVENT_KINDS

    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.strip()
    first_line = stripped.split("\n", 1)[0] if stripped else ""
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict):
        if (
            first.get("kind") in EVENT_KINDS
            and isinstance(first.get("name"), str)
            and "ts" in first
        ):
            return "ledger"
        if "wall_seconds" in first and "label" in first:
            return "trend"
    try:
        document = json.loads(stripped)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict):
        if document.get("schema") == BENCH_SCHEMA and isinstance(
            document.get("points"), list
        ):
            return "bench"
        if document.get("format") == CERTIFICATE_FORMAT:
            return "certificate"
    raise ArtifactError(
        f"{path}: not a known legacy artifact (expected a run ledger, "
        "a trend log, a bench trajectory or an attack certificate)"
    )


def _import_ledger(log: WorldLog, path: str) -> int:
    def parse(line: str) -> dict[str, Any]:
        record = json.loads(line)
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError("line is not a ledger event object")
        return record

    events = load_artifact_lines(path, "ledger event", parse)
    for event in events:
        log.append(
            "ledger.event",
            payload=event,
            cell_id=event.get("cell_id"),
            worker_id=event.get("worker_id", 0),
        )
    return len(events)


def _import_trend(log: WorldLog, path: str) -> int:
    def parse(line: str) -> dict[str, Any]:
        point = json.loads(line)
        if not isinstance(point, dict):
            raise ValueError("line is not a trend point object")
        return point

    points = load_artifact_lines(path, "trend point", parse)
    for point in points:
        log.append("trend.point", payload=point)
    return len(points)


def _import_bench(log: WorldLog, path: str) -> int:
    from repro.obs.bench import read_bench_file

    points = read_bench_file(path)
    for point in points:
        log.append("bench.point", payload=point)
    return len(points)


def _import_certificate(log: WorldLog, path: str) -> int:
    from repro.certify.format import read_certificate

    certificate = read_certificate(path)
    label = os.path.basename(path)
    if label.endswith(".cert.json"):
        label = label[: -len(".cert.json")]
    else:
        label = (
            f"{certificate.protocol}-n{certificate.n}"
            f"-t{certificate.t}"
        )
    log.append(
        "cert.artifact",
        payload={"label": label, "text": certificate.dumps()},
    )
    return 1


_IMPORTERS = {
    "ledger": _import_ledger,
    "trend": _import_trend,
    "bench": _import_bench,
    "certificate": _import_certificate,
}


def import_legacy(
    paths: list[str], out_path: str
) -> dict[str, int]:
    """Convert legacy artifact files into one fresh world log.

    Returns imported-record counts per family (only families that
    contributed appear).

    Raises:
        ArtifactError: when an input matches no known family or is
            malformed (CLI exit 2; nothing is partially written — the
            sniff pass runs before the log is created).
    """
    families = [(path, sniff_family(path)) for path in paths]
    counts: dict[str, int] = {}
    with WorldLog.create(out_path) as log:
        for path, family in families:
            counts[family] = counts.get(family, 0) + _IMPORTERS[
                family
            ](log, path)
    return counts
