"""The world-log store: write-through appends, torn-tail-safe reads.

A :class:`WorldLog` owns one JSONL file.  Appends are *write-through*:
every record is serialized, written and flushed before ``append``
returns, so a killed process leaves at most one torn final line — never
a silently missing middle.  :func:`read_worldlog` is the matching
reader: a final line with no trailing newline that fails to parse is a
crash artifact and is dropped; any other malformed line is a corrupt
log and raises the uniform :class:`~repro.errors.ArtifactError`.

Opening modes:

* :meth:`WorldLog.create` — start a fresh log; writes the ``log.open``
  header (schema tag + run id) as tick 0.
* :meth:`WorldLog.resume` — reopen an existing log and continue its
  tick sequence; already-persisted records stay readable via
  :attr:`WorldLog.records`, which is how crash-resume finds the cells
  it may skip.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, TextIO

from repro.artifact import artifact_error
from repro.errors import ArtifactError
from repro.worldlog.record import WORLDLOG_SCHEMA, Record

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.ledger import LedgerEvent


class WorldLog:
    """One append-only, tick-ordered record store on disk.

    Not constructed directly — use :meth:`create` or :meth:`resume`.
    """

    def __init__(
        self,
        path: str,
        handle: TextIO,
        records: list[Record],
        run_id: str,
    ) -> None:
        self.path = path
        self._handle = handle
        self.records = records
        self.run_id = run_id

    @classmethod
    def create(cls, path: str, run_id: str | None = None) -> "WorldLog":
        """Start a fresh log at ``path`` (parents created on demand)."""
        from repro.obs.ledger import new_run_id

        run_id = new_run_id() if run_id is None else run_id
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        log = cls(path=path, handle=handle, records=[], run_id=run_id)
        log.append("log.open", {"schema": WORLDLOG_SCHEMA})
        return log

    @classmethod
    def resume(cls, path: str) -> "WorldLog":
        """Reopen an existing log, continuing its tick sequence.

        A torn final line (the signature of a killed writer) is
        truncated away before appending resumes; the surviving records
        are exposed on :attr:`records` so callers can skip work whose
        terminal record is already present.

        Raises:
            ArtifactError: if the file is not a world log.
            OSError: if it cannot be read or reopened.
        """
        records = read_worldlog(path)
        # Rewrite the surviving complete lines: this atomically drops a
        # torn tail so the next append starts on a fresh line.
        with open(path, "w", encoding="utf-8") as rewrite:
            for record in records:
                rewrite.write(record.to_json())
                rewrite.write("\n")
        handle = open(path, "a", encoding="utf-8")
        return cls(
            path=path,
            handle=handle,
            records=list(records),
            run_id=records[0].run_id,
        )

    def __len__(self) -> int:
        return len(self.records)

    def __enter__(self) -> "WorldLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def next_tick(self) -> int:
        """The tick the next appended record will carry."""
        return self.records[-1].tick + 1 if self.records else 0

    def append(
        self,
        kind: str,
        payload: Any,
        cell_id: str | None = None,
        worker_id: int | None = None,
    ) -> Record:
        """Append one record and flush it to disk before returning."""
        record = Record(
            tick=self.next_tick,
            kind=kind,
            payload=payload,
            run_id=self.run_id,
            cell_id=cell_id,
            worker_id=os.getpid() if worker_id is None else worker_id,
        )
        self._handle.write(record.to_json())
        self._handle.write("\n")
        self._handle.flush()
        self.records.append(record)
        return record

    def record_event(self, event: "LedgerEvent") -> Record:
        """Mirror one live ledger event into the log, verbatim.

        This is the :class:`~repro.obs.ledger.RunLedger` sink: wire it
        via ``RunLedger(sink=worldlog.record_event)`` and every event
        the ledger accumulates — emitted or spliced — lands in the log
        in the same order, so the derived ledger view is byte-identical
        to what ``RunLedger.write`` would have persisted.
        """
        return self.append(
            "ledger.event",
            payload=json.loads(event.to_json()),
            cell_id=event.cell_id,
            worker_id=event.worker_id,
        )

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def read_records(path: str) -> list[Record]:
    """Parse every complete record of one log file, torn-tail-safe.

    The single parsing path every reader shares — :func:`read_worldlog`
    (and through it :meth:`WorldLog.resume`, the derived views, the
    replay cursor and the differ) all see exactly this record list, so
    a truncated-mid-record log cannot mean different things to
    different entry points.  A final line with no trailing newline that
    fails to parse is dropped (the write-through appender guarantees
    that is the only shape a crash can leave); a malformed line
    anywhere else raises.  No header validation happens here — that is
    :func:`read_worldlog`'s contract.

    Raises:
        ArtifactError: on a malformed non-final line (CLI exit 2).
        OSError: if the file cannot be read.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    lines = text.split("\n")
    complete_through = len(lines) if text.endswith("\n") else len(lines) - 1
    records: list[Record] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(Record.from_json(line))
        except (ValueError, KeyError, TypeError) as exc:
            if number > complete_through:
                break  # torn tail: the one legal crash artifact
            raise artifact_error(
                path, "world-log record", exc, line=number
            ) from exc
    return records


def read_worldlog(path: str) -> list[Record]:
    """Load a persisted world log, tolerating a torn final line.

    :func:`read_records` plus header validation: the first record must
    be the ``log.open`` header carrying the
    :data:`~repro.worldlog.record.WORLDLOG_SCHEMA` tag.

    Raises:
        ArtifactError: if the file is not a world log (CLI exit 2).
        OSError: if the file cannot be read.
    """
    records = read_records(path)
    if (
        not records
        or records[0].kind != "log.open"
        or not isinstance(records[0].payload, dict)
        or records[0].payload.get("schema") != WORLDLOG_SCHEMA
    ):
        raise ArtifactError(
            f"{path}: not a world log (expected a log.open header "
            f"with schema {WORLDLOG_SCHEMA!r})"
        )
    return records


class LogTailer:
    """Incremental, torn-tail-safe reader of a *growing* world log.

    The follow-mode primitive behind ``repro log tail --follow`` and
    the log-backed ``repro top``: each :meth:`poll` reads only the
    bytes appended since the last one and yields the newly *complete*
    records.  The write-through appender's crash contract carries
    over — a partial final line (no ``\\n`` yet) is buffered, not
    parsed, so a record mid-write is simply "not there yet" and is
    yielded whole on a later poll.  A malformed **complete** line is
    corruption and raises the uniform artifact diagnostic, exactly
    like :func:`read_records`.

    Truncation-aware: :meth:`WorldLog.resume` rewrites the file to
    drop a torn tail, which can shrink it below our read offset.  A
    shrink resets the tailer to re-read from the start, skipping the
    records it already emitted by count — followers survive a
    crash-resume of the writer without duplicating records.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._buffer = b""
        self._emitted = 0
        self._line_number = 0

    def poll(self) -> list[Record]:
        """The records completed since the last poll (maybe empty).

        Raises:
            ArtifactError: on a malformed complete line (CLI exit 2).
            OSError: if the file cannot be read.
        """
        try:
            size = os.stat(self.path).st_size
        except FileNotFoundError:
            return []
        if size < self._offset:
            # The writer rewrote the file (resume truncating a torn
            # tail): start over, but skip what we already emitted.
            self._offset = 0
            self._buffer = b""
            self._line_number = 0
            skip = self._emitted
        else:
            skip = 0
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        self._offset += len(chunk)
        self._buffer += chunk
        records: list[Record] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break
            line = self._buffer[:newline].decode("utf-8").strip()
            self._buffer = self._buffer[newline + 1 :]
            self._line_number += 1
            if not line:
                continue
            try:
                record = Record.from_json(line)
            except (ValueError, KeyError, TypeError) as exc:
                raise artifact_error(
                    self.path,
                    "world-log record",
                    exc,
                    line=self._line_number,
                ) from exc
            if skip > 0:
                skip -= 1
                continue
            records.append(record)
            self._emitted += 1
        return records


def is_worldlog(path: str) -> bool:
    """Whether ``path`` exists and opens with a world-log header.

    The schema sniff the transition-era readers (``repro trace``,
    ``repro report --trend``) use to accept either a legacy artifact or
    a world log.  Never raises.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            first = handle.readline().strip()
        if not first:
            return False
        record = Record.from_json(first)
    except (OSError, ValueError, KeyError, TypeError):
        return False
    return (
        record.kind == "log.open"
        and isinstance(record.payload, dict)
        and record.payload.get("schema") == WORLDLOG_SCHEMA
    )
