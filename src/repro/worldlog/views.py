"""Derived views: the five legacy artifact families, re-rendered.

Nothing here is a second source of truth — a view is a pure function of
the record sequence, re-runnable at any time (``repro log derive``),
and proven byte-identical to what the legacy writers persist by the
golden fixtures under ``tests/worldlog/golden``:

* **ledger** — ``ledger.jsonl``: every ``ledger.event`` payload as one
  JSONL line, exactly :meth:`RunLedger.write` output.  For sweep logs
  the view reads events after the *last* ``gather.start`` marker, so a
  crash mid-gather (which would otherwise duplicate spliced events on
  resume) cannot corrupt the view.
* **certificates** — ``certificates/<label>.cert.json``: each
  ``cert.artifact``'s canonical JSON text, exactly the bytes
  ``Certificate.to_bytes`` ships.
* **checkpoints** — ``checkpoints.json``: the in-band driver
  checkpoint notes as one manifest document.
* **bench** — ``BENCH_<suite>.json`` per suite: the schema-versioned
  trajectory document :func:`repro.obs.bench.append_points` writes.
* **trend** — ``trend.jsonl``: each ``trend.point`` payload as one
  JSONL line, exactly :func:`repro.obs.report.append_trend` output.

A sixth, service-era view has no legacy writer: **jobs** —
``jobs.json``: the attack service's job manifest (schema
``repro.jobs/v1``), folding each job's ``job.submitted`` /
``job.start`` / ``job.result`` / ``job.error`` records into one entry
per idempotent job key.  ``repro jobs --log`` renders the same
manifest without materializing it.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.worldlog.record import Record

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.ledger import LedgerEvent

CHECKPOINTS_SCHEMA = "repro.checkpoints/v1"
"""The schema tag of the derived checkpoint manifest."""

JOBS_SCHEMA = "repro.jobs/v1"
"""The schema tag of the derived service job manifest."""


def after_last_gather(records: Sequence[Record]) -> Sequence[Record]:
    """Records after the last ``gather.start`` marker (all, if none).

    The crash-mid-gather rule every event consumer shares: the ledger
    view, the replay cursor's event-derived state and the semantic
    differ all read ledger events through this window, so a resumed
    log's re-spliced events never double-count anywhere.
    """
    last = None
    for index, record in enumerate(records):
        if record.kind == "gather.start":
            last = index
    return records if last is None else records[last + 1 :]


def ledger_lines(records: Sequence[Record]) -> list[str]:
    """The derived ledger view as JSONL lines (no trailing newlines)."""
    return [
        json.dumps(record.payload)
        for record in after_last_gather(records)
        if record.kind == "ledger.event"
    ]


def ledger_events(records: Sequence[Record]) -> "list[LedgerEvent]":
    """The derived ledger view as live events (for ``repro trace``)."""
    from repro.obs.ledger import LedgerEvent

    return [
        LedgerEvent.from_json(line) for line in ledger_lines(records)
    ]


def certificate_texts(records: Iterable[Record]) -> dict[str, str]:
    """Label → canonical certificate JSON text, in record order."""
    texts: dict[str, str] = {}
    for record in records:
        if record.kind == "cert.artifact":
            texts[record.payload["label"]] = record.payload["text"]
    return texts


def checkpoint_manifest(records: Iterable[Record]) -> dict[str, Any]:
    """The derived checkpoint manifest document."""
    return {
        "schema": CHECKPOINTS_SCHEMA,
        "checkpoints": [
            record.payload
            for record in records
            if record.kind == "checkpoint"
        ],
    }


def bench_documents(
    records: Iterable[Record],
) -> dict[str, dict[str, Any]]:
    """Suite → the ``BENCH_<suite>.json`` trajectory document."""
    from repro.obs.bench import BENCH_SCHEMA

    by_suite: dict[str, list[Any]] = {}
    for record in records:
        if record.kind == "bench.point":
            by_suite.setdefault(record.payload["suite"], []).append(
                record.payload
            )
    return {
        suite: {"schema": BENCH_SCHEMA, "points": points}
        for suite, points in sorted(by_suite.items())
    }


def jobs_manifest(records: Iterable[Record]) -> dict[str, Any]:
    """The derived service job manifest (one entry per job key).

    Entries appear in submission order and fold the job's lifecycle
    records into a single summary: the accepted spec and its tenant /
    priority, the current state (``queued`` → ``running`` → ``done`` /
    ``failed``), the ticks of the acceptance and terminal records, and
    — for failed jobs — the structured error kind and message.  The
    full terminal payloads stay in the log; the manifest is the
    operator's index, not a second source of truth.
    """
    jobs: dict[str, dict[str, Any]] = {}
    for record in records:
        payload = record.payload
        if record.kind == "job.submitted":
            jobs[payload["key"]] = {
                "key": payload["key"],
                "tenant": payload["tenant"],
                "priority": payload["priority"],
                "job": payload["job"],
                "state": "queued",
                "submitted_tick": record.tick,
                "terminal_tick": None,
            }
        elif record.kind == "job.start":
            entry = jobs.get(payload["key"])
            if entry is not None and entry["state"] == "queued":
                entry["state"] = "running"
        elif record.kind == "job.result":
            entry = jobs.get(payload["key"])
            if entry is not None:
                entry["state"] = "done"
                entry["terminal_tick"] = record.tick
        elif record.kind == "job.error":
            entry = jobs.get(payload["key"])
            if entry is not None:
                entry["state"] = "failed"
                entry["terminal_tick"] = record.tick
                entry["error_kind"] = payload["error_kind"]
                entry["message"] = payload["message"]
    return {"schema": JOBS_SCHEMA, "jobs": list(jobs.values())}


def trend_points(records: Iterable[Record]) -> list[dict[str, Any]]:
    """The derived trend view, oldest first (for ``report --trend``)."""
    return [
        record.payload
        for record in records
        if record.kind == "trend.point"
    ]


def derive_views(
    records: Sequence[Record], out_dir: str
) -> dict[str, list[str]]:
    """Materialize every view under ``out_dir``; returns paths per view.

    Views with no contributing records write nothing (an attack log
    without bench points derives no ``BENCH_*.json``), so the output
    directory mirrors what the legacy writers would have produced.
    """
    from repro.obs.bench import trajectory_file_name

    os.makedirs(out_dir, exist_ok=True)
    written: dict[str, list[str]] = {}

    lines = ledger_lines(records)
    if lines:
        path = os.path.join(out_dir, "ledger.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        written["ledger"] = [path]

    certificates = certificate_texts(records)
    if certificates:
        cert_dir = os.path.join(out_dir, "certificates")
        os.makedirs(cert_dir, exist_ok=True)
        paths = []
        for label, text in sorted(certificates.items()):
            path = os.path.join(cert_dir, f"{label}.cert.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            paths.append(path)
        written["certificates"] = paths

    manifest = checkpoint_manifest(records)
    if manifest["checkpoints"]:
        path = os.path.join(out_dir, "checkpoints.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written["checkpoints"] = [path]

    documents = bench_documents(records)
    if documents:
        paths = []
        for suite, document in documents.items():
            path = os.path.join(out_dir, trajectory_file_name(suite))
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            paths.append(path)
        written["bench"] = paths

    manifest = jobs_manifest(records)
    if manifest["jobs"]:
        path = os.path.join(out_dir, "jobs.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written["jobs"] = [path]

    points = trend_points(records)
    if points:
        path = os.path.join(out_dir, "trend.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for point in points:
                handle.write(json.dumps(point))
                handle.write("\n")
        written["trend"] = [path]

    return written
