"""JSON codecs for the records crash-resume replays.

A resumed sweep must reconstruct each completed cell's
:class:`~repro.parallel.jobs.JobResult` — outcome value, cache
counters, certificate bytes, ledger segment — from its terminal
``cell.result`` record alone, bit-identically to what the original
worker shipped.  This module is that round trip, built on the shared
:mod:`repro.sim.serialization` codec (executions, payloads) so there is
exactly one encoding policy in the repository.

Wall-clock fields (``wall_seconds``) round-trip verbatim: they are the
*original* run's telemetry, excluded from outcome equality like every
other timing.

Deliberately not encoded:

* ``AttackOutcome.profile`` — wall-clock phase timings, ``compare=False``;
* ``AttackOutcome.certificate`` — the live object; the canonical bytes
  travel separately (``JobResult.certificate``), exactly as they do
  across process boundaries.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.sim.serialization import (
    decode_payload,
    encode_payload,
    execution_from_dict,
    execution_to_dict,
)


# ----------------------------------------------------------------------
# jobs (the sweep.plan payload)
# ----------------------------------------------------------------------


def encode_job(job: Any) -> dict[str, Any]:
    """One sweep job as a JSON-safe plan entry."""
    from repro.parallel.jobs import AttackJob, ClassifyJob, MeasureJob

    if isinstance(job, ClassifyJob):
        return {
            "kind": "classify",
            "builder": job.builder,
            "n": job.n,
            "t": job.t,
            "ledger": job.ledger,
        }
    if isinstance(job, AttackJob):
        return {
            "kind": "attack",
            "builder": job.builder,
            "n": job.n,
            "t": job.t,
            "verify": job.verify,
            "check": job.check,
            "early_stop": job.early_stop,
            "reuse": job.reuse,
            "profile": job.profile,
            "certify": job.certify,
            "ledger": job.ledger,
        }
    if isinstance(job, MeasureJob):
        return {
            "kind": "measure",
            "builder": job.builder,
            "n": job.n,
            "t": job.t,
            "include_mixed": job.include_mixed,
            "ledger": job.ledger,
        }
    raise ReproError(
        f"cannot encode sweep job of type {type(job).__name__}"
    )


def decode_job(data: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_job`."""
    from repro.parallel.jobs import AttackJob, ClassifyJob, MeasureJob

    kind = data.get("kind")
    if kind == "classify":
        return ClassifyJob(
            builder=data["builder"],
            n=data["n"],
            t=data["t"],
            ledger=data["ledger"],
        )
    if kind == "attack":
        return AttackJob(
            builder=data["builder"],
            n=data["n"],
            t=data["t"],
            verify=data["verify"],
            check=data["check"],
            early_stop=data["early_stop"],
            reuse=data["reuse"],
            profile=data["profile"],
            certify=data["certify"],
            ledger=data["ledger"],
        )
    if kind == "measure":
        return MeasureJob(
            builder=data["builder"],
            n=data["n"],
            t=data["t"],
            include_mixed=data["include_mixed"],
            ledger=data["ledger"],
        )
    raise ReproError(f"unknown sweep job kind {kind!r}")


# ----------------------------------------------------------------------
# job values (AttackOutcome / SweepPoint)
# ----------------------------------------------------------------------


def _encode_outcome(outcome: Any) -> dict[str, Any]:
    record: dict[str, Any] = {
        "kind": "attack-outcome",
        "protocol": outcome.protocol,
        "n": outcome.n,
        "t": outcome.t,
        "partition": {
            "n": outcome.partition.n,
            "t": outcome.partition.t,
            "b": sorted(outcome.partition.group_b),
            "c": sorted(outcome.partition.group_c),
        },
        "witness": None,
        "bound": {
            "t": outcome.bound.t,
            "observed": outcome.bound.observed,
        },
        "default_bit": (
            None
            if outcome.default_bit is None
            else encode_payload(outcome.default_bit)
        ),
        "critical_round": outcome.critical_round,
        "log": list(outcome.log),
        "rounds_simulated": outcome.rounds_simulated,
        "rounds_baseline": outcome.rounds_baseline,
    }
    if outcome.witness is not None:
        witness = outcome.witness
        record["witness"] = {
            "kind": witness.kind.value,
            "culprit": witness.culprit,
            "counterpart": witness.counterpart,
            "note": witness.note,
            "execution": execution_to_dict(witness.execution),
        }
    return record


def _decode_outcome(data: dict[str, Any]) -> Any:
    from repro.lowerbound.bound import BoundComparison
    from repro.lowerbound.driver import AttackOutcome
    from repro.lowerbound.partition import ABCPartition
    from repro.lowerbound.witnesses import (
        ViolationKind,
        ViolationWitness,
    )

    witness = None
    if data["witness"] is not None:
        raw = data["witness"]
        witness = ViolationWitness(
            kind=ViolationKind(raw["kind"]),
            execution=execution_from_dict(raw["execution"]),
            culprit=raw["culprit"],
            counterpart=raw["counterpart"],
            note=raw["note"],
        )
    return AttackOutcome(
        protocol=data["protocol"],
        n=data["n"],
        t=data["t"],
        partition=ABCPartition(
            n=data["partition"]["n"],
            t=data["partition"]["t"],
            group_b=frozenset(data["partition"]["b"]),
            group_c=frozenset(data["partition"]["c"]),
        ),
        witness=witness,
        bound=BoundComparison(
            t=data["bound"]["t"], observed=data["bound"]["observed"]
        ),
        default_bit=(
            None
            if data["default_bit"] is None
            else decode_payload(data["default_bit"])
        ),
        critical_round=data["critical_round"],
        log=tuple(data["log"]),
        rounds_simulated=data["rounds_simulated"],
        rounds_baseline=data["rounds_baseline"],
    )


def _encode_point(point: Any) -> dict[str, Any]:
    return {
        "kind": "sweep-point",
        "protocol": point.protocol,
        "n": point.n,
        "t": point.t,
        "worst_messages": point.worst_messages,
        "scenario": point.scenario,
    }


def _decode_point(data: dict[str, Any]) -> Any:
    from repro.analysis.complexity import SweepPoint

    return SweepPoint(
        protocol=data["protocol"],
        n=data["n"],
        t=data["t"],
        worst_messages=data["worst_messages"],
        scenario=data["scenario"],
    )


def _encode_verdict(verdict: Any) -> dict[str, Any]:
    return {
        "kind": "classify-verdict",
        "problem": verdict.problem,
        "n": verdict.n,
        "t": verdict.t,
        "trivial": verdict.trivial,
        "cc_holds": verdict.cc_holds,
        "authenticated_solvable": verdict.authenticated_solvable,
        "unauthenticated_solvable": verdict.unauthenticated_solvable,
    }


def _decode_verdict(data: dict[str, Any]) -> Any:
    from repro.parallel.jobs import ClassifyVerdict

    return ClassifyVerdict(
        problem=data["problem"],
        n=data["n"],
        t=data["t"],
        trivial=data["trivial"],
        cc_holds=data["cc_holds"],
        authenticated_solvable=data["authenticated_solvable"],
        unauthenticated_solvable=data["unauthenticated_solvable"],
    )


def encode_value(value: Any) -> dict[str, Any]:
    """Encode a job payload (outcome, sweep point or verdict)."""
    from repro.analysis.complexity import SweepPoint
    from repro.lowerbound.driver import AttackOutcome
    from repro.parallel.jobs import ClassifyVerdict

    if isinstance(value, AttackOutcome):
        return _encode_outcome(value)
    if isinstance(value, SweepPoint):
        return _encode_point(value)
    if isinstance(value, ClassifyVerdict):
        return _encode_verdict(value)
    raise ReproError(
        f"cannot encode job value of type {type(value).__name__}"
    )


def decode_value(data: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_value`."""
    kind = data.get("kind")
    if kind == "attack-outcome":
        return _decode_outcome(data)
    if kind == "sweep-point":
        return _decode_point(data)
    if kind == "classify-verdict":
        return _decode_verdict(data)
    raise ReproError(f"unknown job value kind {kind!r}")


# ----------------------------------------------------------------------
# ledger events and job results
# ----------------------------------------------------------------------


def encode_event(event: Any) -> dict[str, Any]:
    """One ledger event as its JSONL object (key order preserved)."""
    return json.loads(event.to_json())


def decode_event(data: dict[str, Any]) -> Any:
    from repro.obs.ledger import LedgerEvent

    return LedgerEvent.from_json(json.dumps(data))


def encode_job_result(result: Any) -> dict[str, Any]:
    """A shipped :class:`~repro.parallel.jobs.JobResult`, JSON-safe."""
    return {
        "key": list(result.key),
        "value": encode_value(result.value),
        "wall_seconds": result.wall_seconds,
        "cache": (
            None
            if result.cache is None
            else {
                "hits": result.cache.hits,
                "alias_hits": result.cache.alias_hits,
                "misses": result.cache.misses,
            }
        ),
        "rounds_simulated": result.rounds_simulated,
        "rounds_baseline": result.rounds_baseline,
        "certificate": (
            None
            if result.certificate is None
            else result.certificate.decode("utf-8")
        ),
        "events": (
            None
            if result.events is None
            else [encode_event(event) for event in result.events]
        ),
    }


def decode_job_result(data: dict[str, Any]) -> Any:
    """Inverse of :func:`encode_job_result`."""
    from repro.parallel.jobs import CacheStats, JobResult

    return JobResult(
        key=tuple(data["key"]),
        value=decode_value(data["value"]),
        wall_seconds=data["wall_seconds"],
        cache=(
            None
            if data["cache"] is None
            else CacheStats(
                hits=data["cache"]["hits"],
                alias_hits=data["cache"]["alias_hits"],
                misses=data["cache"]["misses"],
            )
        ),
        rounds_simulated=data["rounds_simulated"],
        rounds_baseline=data["rounds_baseline"],
        certificate=(
            None
            if data["certificate"] is None
            else data["certificate"].encode("utf-8")
        ),
        events=(
            None
            if data["events"] is None
            else tuple(
                decode_event(event) for event in data["events"]
            )
        ),
    )
