"""Gradecast (graded broadcast) — the crusader-broadcast family (§6, [13]).

Related work recalls that even *crusader* broadcast — where limited
disagreement is allowed — carries a quadratic lower bound ([13]).  This
module implements the classic graded relaxation so the repository covers
the relaxed-agreement end of the spectrum:

A designated sender broadcasts; every process outputs a pair
``(value, grade)`` with ``grade ∈ {0, 1, 2}`` such that

* *Graded Validity*: if the sender is correct, every correct process
  outputs ``(v, 2)`` for its value ``v``;
* *Graded Agreement*: the grades of two correct processes differ by at
  most 1, and any two correct processes with grade ≥ 1 hold the same
  value.

Crusader broadcast is the grade-collapsed view: grade 2 → decide the
value, otherwise → decide ``⊥``, with the guarantee that no two correct
processes decide two different *values* (value-vs-⊥ splits are allowed).

Protocol (authenticated, ``n > 3t``, 3 rounds — the Feldman–Micali
shape):

1. the sender signs and broadcasts its value;
2. every process **echoes** the signed value it accepted;
3. a process that saw ``>= n - t`` echoes for one value **proposes** it;
   grading on proposal counts: ``>= n - t`` → grade 2, ``>= t + 1`` →
   grade 1, else grade 0 with the public default.

Why it is safe: two different values cannot both collect ``n - t``
echoes when ``n > 3t`` (each correct process echoes at most once), so
all correct proposals agree; ``t + 1`` proposals always include a
correct one; and one correct grade-2 output forces ``>= n - 2t >= t+1``
proposals at every correct process, hence grade ≥ 1 everywhere.

Because gradecast permits disagreement it is **not** a val-agreement
problem in the paper's §4.1 sense (it has no Agreement property) — the
test-suite demonstrates that boundary explicitly.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, SignatureScheme, Signer
from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round

NO_VALUE = "GRADECAST-NO-VALUE"
"""The public default output when no value reaches grade 1."""


class GradecastProcess(Process):
    """One process of 3-round authenticated gradecast (``n > 3t``)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        sender: ProcessId,
        scheme: SignatureScheme,
        signer: Signer,
        instance: Hashable = "gc",
    ) -> None:
        if n <= 3 * t:
            raise ValueError(
                f"gradecast requires n > 3t, got n={n}, t={t}"
            )
        super().__init__(pid, n, t, proposal)
        self.sender = sender
        self.scheme = scheme
        self.signer = signer
        self.instance = instance
        self._accepted: tuple[Payload, Signature] | None = None
        self._echo_counts: dict[Payload, int] = {}
        self._proposing: tuple[Payload, Signature] | None = None
        self._proposal_counts: dict[Payload, int] = {}
        # Verified sender signatures seen on any message, per value:
        # lets a process propose a value it verified via echoes even if
        # the sender equivocated and gave it a different value directly.
        self._signature_cache: dict[Payload, Signature] = {}

    def _signed_content(self, value: Payload) -> tuple:
        return ("gradecast", self.instance, value)

    def _verified(self, value: Payload, signature: object) -> bool:
        return (
            isinstance(signature, Signature)
            and signature.signer == self.sender
            and self.scheme.verify(
                signature, self._signed_content(value)
            )
        )

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == 1 and self.pid == self.sender:
            signature = self.signer.sign(
                self._signed_content(self.proposal)
            )
            return self._broadcast(("send", self.proposal, signature))
        if round_ == 2 and self._accepted is not None:
            value, signature = self._accepted
            return self._broadcast(("echo", value, signature))
        if round_ == 3 and self._proposing is not None:
            value, signature = self._proposing
            return self._broadcast(("propose", value, signature))
        return {}

    def _broadcast(self, payload: Payload) -> dict[ProcessId, Payload]:
        return {
            other: payload for other in range(self.n) if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == 1:
            self._absorb_send(received)
        elif round_ == 2:
            self._absorb_tagged(received, "echo", self._echo_counts)
            self._pick_proposal()
        elif round_ == 3:
            self._absorb_tagged(
                received, "propose", self._proposal_counts
            )
            self._grade()

    def _absorb_send(
        self, received: Mapping[ProcessId, Payload]
    ) -> None:
        if self.pid == self.sender:
            signature = self.signer.sign(
                self._signed_content(self.proposal)
            )
            self._accepted = (self.proposal, signature)
            return
        payload = received.get(self.sender)
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == "send"
            and self._verified(payload[1], payload[2])
        ):
            self._accepted = (payload[1], payload[2])

    def _absorb_tagged(
        self,
        received: Mapping[ProcessId, Payload],
        tag: str,
        counts: dict[Payload, int],
    ) -> None:
        own = (
            self._accepted if tag == "echo" else self._proposing
        )
        if own is not None:
            counts[own[0]] = counts.get(own[0], 0) + 1
        for _, payload in sorted(received.items()):
            if not (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == tag
            ):
                continue
            value, signature = payload[1], payload[2]
            if self._verified(value, signature):
                counts[value] = counts.get(value, 0) + 1
                self._signature_cache.setdefault(value, signature)

    def _pick_proposal(self) -> None:
        if self._accepted is not None:
            self._signature_cache.setdefault(*self._accepted)
        for value, count in sorted(
            self._echo_counts.items(), key=lambda item: repr(item[0])
        ):
            if count >= self.n - self.t:
                signature = self._signature_cache.get(value)
                if signature is not None:
                    self._proposing = (value, signature)
                return

    def _grade(self) -> None:
        best_value: Payload = NO_VALUE
        best_count = 0
        for value, count in sorted(
            self._proposal_counts.items(),
            key=lambda item: repr(item[0]),
        ):
            if count > best_count:
                best_value, best_count = value, count
        if best_count >= self.n - self.t:
            self.decide((best_value, 2))
        elif best_count >= self.t + 1:
            self.decide((best_value, 1))
        else:
            self.decide((NO_VALUE, 0))


def gradecast_spec(
    n: int,
    t: int,
    sender: ProcessId = 0,
    *,
    seed: bytes | str = b"repro-gc",
    instance: Hashable = "gc",
) -> ProtocolSpec:
    """Gradecast as a :class:`ProtocolSpec` (authenticated, ``n > 3t``)."""
    scheme = SignatureScheme(KeyRegistry(n, seed))

    def factory(pid: ProcessId, proposal: Payload) -> GradecastProcess:
        return GradecastProcess(
            pid,
            n,
            t,
            proposal,
            sender=sender,
            scheme=scheme,
            signer=scheme.signer_for(pid),
            instance=instance,
        )

    return ProtocolSpec(
        name=f"gradecast(sender={sender})",
        n=n,
        t=t,
        rounds=3,
        factory=factory,
        authenticated=True,
    )


def crusader_decision(graded: Payload) -> Payload:
    """Collapse a gradecast output into a crusader-broadcast decision.

    Grade 2 commits to the value; anything less decides the public ``⊥``
    (crusader broadcast's allowed partial disagreement).
    """
    if (
        isinstance(graded, tuple)
        and len(graded) == 2
        and graded[1] == 2
    ):
        return graded[0]
    return NO_VALUE
