"""Protocol specifications: algorithms as first-class values.

A :class:`ProtocolSpec` bundles everything the simulator, the reductions
(§4.2, §5.2) and the lower-bound driver (§3) need to know about an
algorithm 𝒜:

* a :class:`~repro.sim.process.ProcessFactory` building honest machines;
* the system size ``(n, t)`` the instance is configured for;
* a sound decision horizon ``rounds`` (all correct processes of a correct
  algorithm decide within it — the finite stand-in for the paper's
  infinite executions);
* whether the algorithm is authenticated (§5.1);
* the value domains it works over.

Everything downstream is parameterized on specs, so a reduction is just a
function ``ProtocolSpec -> ProtocolSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.sim.adversary import Adversary
from repro.sim.engine import RoundObserver
from repro.sim.execution import Execution
from repro.sim.process import Process, ProcessFactory
from repro.sim.simulator import SimulationConfig, run_execution
from repro.types import Payload, validate_system_size


@dataclass(frozen=True)
class ProtocolSpec:
    """An agreement algorithm instance, ready to run.

    Attributes:
        name: human-readable protocol name (for reports).
        n: number of processes.
        t: tolerated corruptions.
        rounds: sound decision horizon for correct runs of this algorithm.
        factory: builds the honest machine for ``(pid, proposal)``.
        authenticated: whether the algorithm uses signatures (§5.1).
    """

    name: str
    n: int
    t: int
    rounds: int
    factory: ProcessFactory
    authenticated: bool = False

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if self.rounds < 1:
            raise ValueError(f"horizon must be >= 1, got {self.rounds}")

    def run(
        self,
        proposals: Sequence[Payload],
        adversary: Adversary | None = None,
        *,
        rounds: int | None = None,
        check: bool = True,
        observers: Sequence[RoundObserver] = (),
        early_stop: bool = False,
    ) -> Execution:
        """Simulate one execution of this protocol.

        Args:
            proposals: per-process proposals.
            adversary: static adversary (``None``: no faults).
            rounds: horizon override (defaults to the spec's sound bound).
            check: run the model validity checker on the trace.
            observers: extra engine observers (e.g. a
                :class:`~repro.sim.metrics.StreamingComplexity`).
            early_stop: halt once all correct processes decided; the
                truncated trace is a prefix of the full run with the same
                decisions.
        """
        config = SimulationConfig(
            n=self.n,
            t=self.t,
            rounds=self.rounds if rounds is None else rounds,
            check=check,
        )
        return run_execution(
            config,
            proposals,
            self.factory,
            adversary,
            observers=observers,
            early_stop=early_stop,
        )

    def run_uniform(
        self,
        proposal: Payload,
        adversary: Adversary | None = None,
        *,
        rounds: int | None = None,
        check: bool = True,
        observers: Sequence[RoundObserver] = (),
        early_stop: bool = False,
    ) -> Execution:
        """Simulate with every process proposing ``proposal``."""
        return self.run(
            [proposal] * self.n,
            adversary,
            rounds=rounds,
            check=check,
            observers=observers,
            early_stop=early_stop,
        )

    def renamed(self, name: str) -> "ProtocolSpec":
        """A copy of this spec under a different display name."""
        return replace(self, name=name)


SpecBuilder = Callable[[int, int], ProtocolSpec]
"""Builds a protocol spec for a given ``(n, t)`` — used by sweep harnesses."""


class DelegatingProcess(Process):
    """A machine forwarding all messaging to an inner machine.

    The base building block of the reduction combinators (§4.2, §5.2):
    a reduction changes what is *proposed to* and *decided from* the inner
    algorithm but adds no communication of its own, so ``outgoing`` and
    ``deliver`` delegate verbatim.  Subclasses override
    :meth:`translate_decision` to map inner decisions to outer ones.
    """

    def __init__(self, inner: Process, outer_proposal: Payload) -> None:
        super().__init__(inner.pid, inner.n, inner.t, outer_proposal)
        self.inner = inner

    def outgoing(self, round_):  # noqa: D102 - delegation, see class doc
        return self.inner.outgoing(round_)

    def deliver(self, round_, received):  # noqa: D102
        self.inner.deliver(round_, received)
        inner_decision = self.inner.decision
        if inner_decision is not None and self.decision is None:
            self.decide(self.translate_decision(inner_decision))

    def translate_decision(self, inner_decision: Payload) -> Payload:
        """Map the inner algorithm's decision to the outer problem's."""
        return inner_decision
