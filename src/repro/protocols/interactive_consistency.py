"""Interactive consistency (§5.2.2; [78], [52], [88]).

Processes agree on a full vector of ``n`` proposals such that the slot of
every correct process holds that process's actual proposal (*IC-Validity*,
expressible as ``IC-Validity(c) = {c' ∈ I_n | c' ⊇ c}`` — §5.2.2).  The
general solvability theorem rests on IC: any containment-condition problem
reduces to it (Algorithm 2).

Two implementations, matching the paper's citations:

* **Authenticated**, any ``t < n``: ``n`` parallel Dolev–Strong broadcasts
  ([52]), one per process, multiplexed over single physical messages.
  Slots of provably-faulty senders hold
  :data:`~repro.protocols.dolev_strong.SENDER_FAULTY`.
* **Unauthenticated**, ``n > 3t``: EIG in vector mode ([55], [78]) — see
  :func:`repro.protocols.eig.eig_vector_spec`.
"""

from __future__ import annotations

from typing import Mapping

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignatureScheme
from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import DolevStrongProcess
from repro.protocols.eig import eig_vector_spec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


class ParallelBroadcastIC(Process):
    """Authenticated IC: one Dolev–Strong instance per designated sender.

    Each physical message carries a tuple of ``(instance_index, payload)``
    pairs, one per sub-broadcast with traffic this round, so the
    multiplexing adds no extra messages — only larger payloads (the
    paper's metric is messages, §2).
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        scheme: SignatureScheme,
        senders: tuple[ProcessId, ...] | None = None,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        signer = scheme.signer_for(pid)
        self.senders: tuple[ProcessId, ...] = (
            tuple(range(n)) if senders is None else tuple(senders)
        )
        self._subs: list[DolevStrongProcess] = [
            DolevStrongProcess(
                pid,
                n,
                t,
                proposal,
                sender=sender,
                scheme=scheme,
                signer=signer,
                instance=("ic", sender),
            )
            for sender in self.senders
        ]

    @property
    def last_round(self) -> Round:
        """All sub-broadcasts decide after round ``t+1``."""
        return self.t + 1

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        merged: dict[ProcessId, list[tuple[int, Payload]]] = {}
        for index, sub in enumerate(self._subs):
            for receiver, payload in sub.outgoing(round_).items():
                merged.setdefault(receiver, []).append((index, payload))
        return {
            receiver: tuple(parts)
            for receiver, parts in sorted(merged.items())
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        per_sub: list[dict[ProcessId, Payload]] = [
            {} for _ in self._subs
        ]
        for sender, payload in sorted(received.items()):
            if not isinstance(payload, tuple):
                continue
            for part in payload:
                if not (isinstance(part, tuple) and len(part) == 2):
                    continue
                index, sub_payload = part
                if (
                    isinstance(index, int)
                    and 0 <= index < len(per_sub)
                    and sender not in per_sub[index]
                ):
                    per_sub[index][sender] = sub_payload
        for index, sub in enumerate(self._subs):
            sub.deliver(round_, per_sub[index])
        if round_ >= self.last_round and self.decision is None:
            decisions = [sub.decision for sub in self._subs]
            if all(decision is not None for decision in decisions):
                self.decide(self.combine(tuple(decisions)))

    def combine(self, decisions: tuple[Payload, ...]) -> Payload:
        """Fold the per-sender broadcast outputs into the decision.

        The IC decision is the vector itself; subclasses (e.g. the
        external-validity protocol) override this to pick a value out of
        the vector.  ``decisions[i]`` is the output of the broadcast whose
        designated sender is ``self.senders[i]``.
        """
        return decisions


def authenticated_ic_spec(
    n: int, t: int, *, seed: bytes | str = b"repro-ic"
) -> ProtocolSpec:
    """Authenticated interactive consistency for any ``t < n`` ([52])."""
    scheme = SignatureScheme(KeyRegistry(n, seed))

    def factory(pid: ProcessId, proposal: Payload) -> ParallelBroadcastIC:
        return ParallelBroadcastIC(pid, n, t, proposal, scheme=scheme)

    return ProtocolSpec(
        name="ic-parallel-dolev-strong",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=True,
    )


def unauthenticated_ic_spec(
    n: int, t: int, default: Payload = 0
) -> ProtocolSpec:
    """Unauthenticated interactive consistency for ``n > 3t`` (EIG)."""
    return eig_vector_spec(n, t, default=default).renamed("ic-eig")


def ic_spec(
    n: int,
    t: int,
    *,
    authenticated: bool,
    default: Payload = 0,
    seed: bytes | str = b"repro-ic",
) -> ProtocolSpec:
    """The IC instance matching the setting of Theorem 4's two branches."""
    if authenticated:
        return authenticated_ic_spec(n, t, seed=seed)
    return unauthenticated_ic_spec(n, t, default=default)
