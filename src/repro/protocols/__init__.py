"""Concrete Byzantine agreement protocols (the paper's substrate).

* :mod:`repro.protocols.dolev_strong` — authenticated Byzantine broadcast,
  any ``t < n`` ([52]).
* :mod:`repro.protocols.eig` — unauthenticated EIG agreement and
  interactive consistency, ``n > 3t`` ([78], [82]).
* :mod:`repro.protocols.phase_king` — unauthenticated strong consensus
  with polynomial messages, ``n > 3t``.
* :mod:`repro.protocols.interactive_consistency` — authenticated and
  unauthenticated IC (§5.2.2).
* :mod:`repro.protocols.weak_consensus` — correct weak consensus plus the
  unsound flooding counterexample.
* :mod:`repro.protocols.strong_consensus` — strong consensus wrappers.
* :mod:`repro.protocols.external_validity` — blockchain-style agreement
  with External Validity (§4.3).
* :mod:`repro.protocols.subquadratic` — sub-quadratic cheaters the lower
  bound breaks (experiment E3).
* :mod:`repro.protocols.byzantine_strategies` — reusable attack machines.
* :mod:`repro.protocols.vector_consensus` — vector consensus over IC
  ([38] in §6).
* :mod:`repro.protocols.gradecast` — graded/crusader broadcast ([13]).
* :mod:`repro.protocols.floodset` /
  :mod:`repro.protocols.early_stopping` — crash-model consensus
  substrates (the "why omission is harder" foil; [50]).
* :mod:`repro.protocols.approximate` /
  :mod:`repro.protocols.kset` — the §7 beyond-agreement relaxations.
"""

from repro.protocols.approximate import (
    ApproximateAgreementProcess,
    approximate_agreement_spec,
    rounds_for_precision,
)
from repro.protocols.base import DelegatingProcess, ProtocolSpec, SpecBuilder
from repro.protocols.byzantine_strategies import (
    Strategy,
    crash_at,
    equivocating_sender,
    garbage,
    mute,
    two_faced,
)
from repro.protocols.dolev_strong import (
    SENDER_FAULTY,
    DolevStrongProcess,
    dolev_strong_spec,
    scheme_for_spec,
)
from repro.protocols.eig import (
    EIGProcess,
    eig_consensus_spec,
    eig_vector_spec,
)
from repro.protocols.early_stopping import (
    EarlyStoppingConsensus,
    early_stopping_spec,
)
from repro.protocols.floodset import FloodSetProcess, floodset_spec
from repro.protocols.gradecast import (
    NO_VALUE,
    GradecastProcess,
    crusader_decision,
    gradecast_spec,
)
from repro.protocols.external_validity import (
    ClientPool,
    ExternalValidityAgreement,
    Transaction,
    external_validity_spec,
)
from repro.protocols.kset import KSetProcess, kset_rounds, kset_spec
from repro.protocols.interactive_consistency import (
    ParallelBroadcastIC,
    authenticated_ic_spec,
    ic_spec,
    unauthenticated_ic_spec,
)
from repro.protocols.phase_king import PhaseKingProcess, phase_king_spec
from repro.protocols.strong_consensus import (
    ICMajorityConsensus,
    authenticated_strong_consensus_spec,
    unauthenticated_strong_consensus_spec,
)
from repro.protocols.subquadratic import (
    ALL_CHEATERS,
    CommitteeCheater,
    LeaderEchoCheater,
    RingTokenCheater,
    SampledCommitteeCheater,
    SilentCheater,
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    seeded_committee_cheater_spec,
    silent_cheater_spec,
)
from repro.protocols.vector_consensus import (
    VectorConsensusProcess,
    vector_consensus_spec,
)
from repro.protocols.weak_consensus import (
    BroadcastWeakConsensus,
    NaiveFloodingWeakConsensus,
    broadcast_weak_consensus_spec,
    naive_flooding_spec,
)

__all__ = [
    "ALL_CHEATERS",
    "ApproximateAgreementProcess",
    "approximate_agreement_spec",
    "rounds_for_precision",
    "BroadcastWeakConsensus",
    "ClientPool",
    "CommitteeCheater",
    "DelegatingProcess",
    "DolevStrongProcess",
    "EIGProcess",
    "ExternalValidityAgreement",
    "EarlyStoppingConsensus",
    "FloodSetProcess",
    "GradecastProcess",
    "NO_VALUE",
    "crusader_decision",
    "early_stopping_spec",
    "floodset_spec",
    "gradecast_spec",
    "VectorConsensusProcess",
    "vector_consensus_spec",
    "ICMajorityConsensus",
    "KSetProcess",
    "kset_rounds",
    "kset_spec",
    "LeaderEchoCheater",
    "NaiveFloodingWeakConsensus",
    "ParallelBroadcastIC",
    "PhaseKingProcess",
    "ProtocolSpec",
    "RingTokenCheater",
    "SampledCommitteeCheater",
    "ring_token_spec",
    "seeded_committee_cheater_spec",
    "SENDER_FAULTY",
    "SilentCheater",
    "SpecBuilder",
    "Strategy",
    "Transaction",
    "authenticated_ic_spec",
    "authenticated_strong_consensus_spec",
    "broadcast_weak_consensus_spec",
    "committee_cheater_spec",
    "crash_at",
    "dolev_strong_spec",
    "eig_consensus_spec",
    "eig_vector_spec",
    "equivocating_sender",
    "external_validity_spec",
    "garbage",
    "ic_spec",
    "leader_echo_spec",
    "mute",
    "naive_flooding_spec",
    "phase_king_spec",
    "scheme_for_spec",
    "silent_cheater_spec",
    "two_faced",
    "unauthenticated_ic_spec",
    "unauthenticated_strong_consensus_spec",
]
