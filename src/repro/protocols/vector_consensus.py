"""Vector consensus ([38] in §6): agree on the proposals of ≥ n-t
processes.

Implementation: run interactive consistency and publish the agreed vector
with provably-faulty slots replaced by the public ``ABSENT`` marker.
Sender Validity fills every correct slot with the true proposal, so at
least ``n - t`` slots are present; per-instance Agreement makes the whole
vector common.

The paper's relevance: vector consensus is yet another non-trivial
agreement problem, hence (Theorem 3) yet another `Ω(t²)` customer — the
test-suite wires it through the Algorithm-1 reduction to prove the point
constructively.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import SENDER_FAULTY
from repro.protocols.interactive_consistency import authenticated_ic_spec
from repro.sim.process import Process
from repro.validity.standard import ABSENT
from repro.types import Payload, ProcessId, Round


class VectorConsensusProcess(Process):
    """IC with faulty slots publicly marked ``ABSENT``."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        inner: Process,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.inner = inner

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        return self.inner.outgoing(round_)

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        self.inner.deliver(round_, received)
        vector = self.inner.decision
        if vector is not None and self.decision is None:
            self.decide(
                tuple(
                    ABSENT if slot == SENDER_FAULTY else slot
                    for slot in vector
                )
            )


def vector_consensus_spec(
    n: int, t: int, *, seed: bytes | str = b"repro-vc"
) -> ProtocolSpec:
    """Authenticated vector consensus for any ``t < n``."""
    ic = authenticated_ic_spec(n, t, seed=seed)

    def factory(pid: ProcessId, proposal: Payload) -> VectorConsensusProcess:
        return VectorConsensusProcess(
            pid, n, t, proposal, inner=ic.factory(pid, proposal)
        )

    return ProtocolSpec(
        name="vector-consensus",
        n=n,
        t=t,
        rounds=ic.rounds,
        factory=factory,
        authenticated=True,
    )
