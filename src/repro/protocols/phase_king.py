"""The King algorithm: unauthenticated strong consensus for ``n > 3t``.

The polynomial-message alternative to EIG (Berman–Garay–Perry lineage):
``t+1`` phases of three rounds each, phase ``p`` presided over by king
``p-1`` (0-based).  Within a phase, with all counts including one's own
value/proposal:

* **Value round** — everyone broadcasts its current value; a process that
  sees some value ``y`` at least ``n - t`` times becomes a *supporter* of
  ``y``.
* **Proposal round** — supporters broadcast their proposal; a process that
  sees more than ``t`` proposals for some ``z`` adopts ``z``; it also
  remembers how many proposals backed ``z``.
* **King round** — the phase king broadcasts its value; a process whose
  proposal support was below ``n - t`` adopts the king's value instead
  (or the default if the king stayed silent).

Since ``2(n - t) > n + t``, two correct processes can never support
different values in one phase, and ``> t`` proposals always include a
correct supporter — so all adopted values agree.  A phase with a correct
king leaves all correct processes with a common value, which then persists;
with ``t+1`` phases some king is correct.  If all correct processes start
with the same value they see it ``>= n - t`` times forever and never defer
to any king — Strong Validity.

Message complexity is Θ(t · n²), comfortably above the paper's ``t²/32``
floor — measured in experiment E1/E7.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round

_VALUE, _PROPOSE, _KING = "value", "propose", "king"


class PhaseKingProcess(Process):
    """One process of the King algorithm (``n > 3t``)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        default: Payload = 0,
    ) -> None:
        if n <= 3 * t:
            raise ValueError(
                f"the King algorithm requires n > 3t, got n={n}, t={t}"
            )
        super().__init__(pid, n, t, proposal)
        self.default = default
        self.value = proposal
        self._my_proposal: Payload | None = None
        self._support = 0

    @property
    def phases(self) -> int:
        """``t+1`` phases, one per potential king, ensuring a correct one."""
        return self.t + 1

    @property
    def last_round(self) -> Round:
        """Three rounds per phase."""
        return 3 * self.phases

    @staticmethod
    def phase_and_step(round_: Round) -> tuple[int, int]:
        """Map a 1-based round to ``(phase, step)``; steps are 0, 1, 2."""
        return (round_ - 1) // 3 + 1, (round_ - 1) % 3

    def king_of(self, phase: int) -> ProcessId:
        """The king of ``phase`` (phases are 1-based, kings 0-based)."""
        return (phase - 1) % self.n

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        phase, step = self.phase_and_step(round_)
        if step == 0:
            return self._broadcast((_VALUE, self.value))
        if step == 1:
            if self._my_proposal is None:
                return {}
            return self._broadcast((_PROPOSE, self._my_proposal))
        if self.king_of(phase) == self.pid:
            return self._broadcast((_KING, self.value))
        return {}

    def _broadcast(self, payload: Payload) -> dict[ProcessId, Payload]:
        return {
            other: payload for other in range(self.n) if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        phase, step = self.phase_and_step(round_)
        if step == 0:
            self._value_round(received)
        elif step == 1:
            self._proposal_round(received)
        else:
            self._king_round(phase, received)
            if round_ == self.last_round:
                self.decide(self.value)

    def _tally(
        self,
        received: Mapping[ProcessId, Payload],
        kind: str,
        own: Payload | None,
    ) -> dict[Payload, int]:
        """Count well-formed ``kind`` payloads, including our own vote."""
        counts: dict[Payload, int] = {}
        if own is not None:
            counts[own] = 1
        for _, payload in sorted(received.items()):
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == kind
            ):
                value = payload[1]
                counts[value] = counts.get(value, 0) + 1
        return counts

    def _value_round(
        self, received: Mapping[ProcessId, Payload]
    ) -> None:
        counts = self._tally(received, _VALUE, own=self.value)
        self._my_proposal = None
        for value, count in sorted(
            counts.items(), key=lambda item: repr(item[0])
        ):
            if count >= self.n - self.t:
                self._my_proposal = value
                break

    def _proposal_round(
        self, received: Mapping[ProcessId, Payload]
    ) -> None:
        counts = self._tally(received, _PROPOSE, own=self._my_proposal)
        self._support = 0
        best: Payload | None = None
        for value, count in sorted(
            counts.items(), key=lambda item: repr(item[0])
        ):
            if count > self._support:
                self._support = count
                best = value
        if best is not None and self._support > self.t:
            self.value = best
        else:
            self._support = 0

    def _king_round(
        self, phase: int, received: Mapping[ProcessId, Payload]
    ) -> None:
        if self._support >= self.n - self.t:
            return  # strong backing: ignore the king
        king = self.king_of(phase)
        if king == self.pid:
            return  # the king keeps its own value
        payload = received.get(king)
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == _KING
        ):
            self.value = payload[1]
        else:
            self.value = self.default


def phase_king_spec(
    n: int, t: int, default: Payload = 0
) -> ProtocolSpec:
    """The King algorithm as a :class:`ProtocolSpec` (``n > 3t``)."""

    def factory(pid: ProcessId, proposal: Payload) -> PhaseKingProcess:
        return PhaseKingProcess(pid, n, t, proposal, default=default)

    return ProtocolSpec(
        name="phase-king",
        n=n,
        t=t,
        rounds=3 * (t + 1),
        factory=factory,
        authenticated=False,
    )
