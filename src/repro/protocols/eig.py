"""Exponential Information Gathering (EIG) agreement ([78], [82]; §5.2).

The classic unauthenticated synchronous algorithm for ``n > 3t``: for
``t+1`` rounds every process relays everything it has heard, organized as a
tree of *labels* — a label ``(j_1, ..., j_r)`` stores "``j_r`` said that
``j_{r-1}`` said that ... ``j_1`` proposed ``v``".  After round ``t+1`` the
tree is resolved bottom-up by strict majority; the key lemma (``n > 3t``)
makes the resolved level-1 vector *identical at all correct processes*.

Two decision modes share the machinery:

* ``consensus`` — decide the majority value of the resolved level-1 vector
  (strong consensus: Agreement + Strong Validity);
* ``vector`` — decide the resolved level-1 vector itself, which is exactly
  *interactive consistency* (IC-Validity: the slot of every correct
  process holds its proposal), the pivot of the sufficiency proof of the
  general solvability theorem (Lemma 9).

Message complexity is Θ(n^{t+1}) entries in the worst case — exponential
information gathering earns its name; use small ``t``.
"""

from __future__ import annotations

from typing import Literal, Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round

Label = tuple[ProcessId, ...]

DecisionMode = Literal["consensus", "vector"]


class EIGProcess(Process):
    """One process of EIG agreement.

    Args:
        pid, n, t, proposal: as usual; requires ``n > 3t``.
        default: the fallback value used when majorities fail.
        mode: ``"consensus"`` or ``"vector"`` (see module docstring).
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        default: Payload = 0,
        mode: DecisionMode = "consensus",
    ) -> None:
        if n <= 3 * t:
            raise ValueError(
                f"EIG requires n > 3t, got n={n}, t={t} "
                "(Theorem 4's unauthenticated threshold)"
            )
        super().__init__(pid, n, t, proposal)
        self.default = default
        self.mode = mode
        self._val: dict[Label, Payload] = {}

    @property
    def last_round(self) -> Round:
        """Round ``t+1``, after which the tree is resolved."""
        return self.t + 1

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        entries = self._entries_for_round(round_)
        # Self-simulation: the model forbids self-messages, so record what
        # this process "tells itself" directly (standard EIG lets a process
        # be its own informant).
        for label, value in entries:
            self._store(label + (self.pid,), value)
        if not entries:
            return {}
        payload = tuple(sorted(entries, key=lambda e: (e[0], repr(e[1]))))
        return {
            other: payload
            for other in range(self.n)
            if other != self.pid
        }

    def _entries_for_round(
        self, round_: Round
    ) -> list[tuple[Label, Payload]]:
        """Level ``round_ - 1`` entries not already relayed through us."""
        if round_ == 1:
            return [((), self.proposal)]
        wanted = round_ - 1
        return [
            (label, value)
            for label, value in sorted(
                self._val.items(), key=lambda e: e[0]
            )
            if len(label) == wanted and self.pid not in label
        ]

    def _store(self, label: Label, value: Payload) -> None:
        if label not in self._val:
            self._val[label] = value

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        for sender, payload in sorted(received.items()):
            self._absorb(round_, sender, payload)
        if round_ == self.last_round:
            self._decide_now()

    def _absorb(
        self, round_: Round, sender: ProcessId, payload: Payload
    ) -> None:
        """Store well-formed entries; Byzantine garbage is ignored.

        Malformed or missing entries simply leave tree slots unset; the
        resolver treats unset slots as ``default``, which is the standard
        EIG handling of silent or garbled informants.
        """
        if not isinstance(payload, tuple):
            return
        for entry in payload:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                continue
            label, value = entry
            if not isinstance(label, tuple):
                continue
            if len(label) != round_ - 1:
                continue
            if any(
                not isinstance(element, int)
                or not 0 <= element < self.n
                for element in label
            ):
                continue
            if len(set(label)) != len(label):
                continue
            if sender in label:
                continue
            self._store(label + (sender,), value)

    def _decide_now(self) -> None:
        vector = self.resolved_vector()
        if self.mode == "vector":
            self.decide(tuple(vector))
        else:
            self.decide(
                _strict_majority(vector, default=self.default)
            )

    def resolved_vector(self) -> list[Payload]:
        """The resolved level-1 vector ``W`` (common to correct processes)."""
        return [self._newval((j,)) for j in range(self.n)]

    def _newval(self, label: Label) -> Payload:
        if len(label) == self.t + 1:
            return self._val.get(label, self.default)
        children = [
            self._newval(label + (j,))
            for j in range(self.n)
            if j not in label
        ]
        return _strict_majority(children, default=self.default)


def _strict_majority(
    values: list[Payload], default: Payload
) -> Payload:
    """The value held by a strict majority of ``values``, else ``default``."""
    counts: dict[Payload, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    for value, count in sorted(
        counts.items(), key=lambda item: repr(item[0])
    ):
        if count * 2 > len(values):
            return value
    return default


def eig_consensus_spec(
    n: int, t: int, default: Payload = 0
) -> ProtocolSpec:
    """Unauthenticated strong consensus via EIG (``n > 3t``)."""

    def factory(pid: ProcessId, proposal: Payload) -> EIGProcess:
        return EIGProcess(
            pid, n, t, proposal, default=default, mode="consensus"
        )

    return ProtocolSpec(
        name="eig-consensus",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=False,
    )


def eig_vector_spec(
    n: int, t: int, default: Payload = 0
) -> ProtocolSpec:
    """Unauthenticated interactive consistency via EIG (``n > 3t``)."""

    def factory(pid: ProcessId, proposal: Payload) -> EIGProcess:
        return EIGProcess(
            pid, n, t, proposal, default=default, mode="vector"
        )

    return ProtocolSpec(
        name="eig-vector",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=False,
    )
