"""Synchronous k-set agreement, crash model (§7; [24, 48, 49]).

The second of the paper's "problems which do not require agreement":
correct processes may decide up to ``k`` distinct values.  The classic
crash-model algorithm is FloodSet cut short: flood value sets for only
``⌊t/k⌋ + 1`` rounds and decide the minimum seen.  With at most ``t``
crashes, some round among them sees at most ``k - 1`` crashes... more
precisely, the pigeonhole over rounds bounds the surviving "information
frontiers" by ``k``, so at most ``k`` distinct minima are decided — in
exchange for a ``(t/k)``-fold latency saving over consensus.

(Byzantine k-set agreement is far subtler — see [24] for a necessary
condition — and out of scope, like the rest of the Byzantine beyond-
agreement landscape the paper defers to future work.)

k = 1 degenerates to FloodSet consensus; k >= t + 1 is solvable in a
single round (everyone decides its own value after one exchange — or
even zero rounds; we keep one round so the metric is non-trivial).
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


def kset_rounds(t: int, k: int) -> int:
    """The crash-model round bound ``⌊t/k⌋ + 1``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return t // k + 1


class KSetProcess(Process):
    """One process of crash-model k-set agreement."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        k: int,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seen: set[Payload] = {proposal}

    @property
    def last_round(self) -> Round:
        return kset_rounds(self.t, self.k)

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        payload = tuple(sorted(self.seen, key=repr))
        return {
            other: payload
            for other in range(self.n)
            if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        for _, payload in sorted(received.items()):
            if isinstance(payload, tuple):
                self.seen.update(payload)
        if round_ == self.last_round:
            self.decide(min(self.seen, key=repr))


def kset_spec(n: int, t: int, k: int) -> ProtocolSpec:
    """Crash-model k-set agreement as a spec (horizon ``⌊t/k⌋ + 1``)."""

    def factory(pid: ProcessId, proposal: Payload) -> KSetProcess:
        return KSetProcess(pid, n, t, proposal, k=k)

    return ProtocolSpec(
        name=f"kset-agreement(k={k})",
        n=n,
        t=t,
        rounds=kset_rounds(t, k),
        factory=factory,
        authenticated=False,
    )
