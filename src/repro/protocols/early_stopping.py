"""Early-stopping crash consensus (§6, [50]).

The related-work section cites Dolev–Lenzen's "early-deciding consensus
is expensive" [50]; this module provides the classic *early-deciding*
algorithm that motivates that line: FloodSet augmented with the
"no new failure observed" rule, deciding in ``min(f + 2, t + 2)`` rounds
where ``f`` is the number of **actual** crashes — latency adapts to real
faults instead of the worst case.

Rule: let ``W_r`` be the set of processes heard from in round ``r``
(plus self).  Decide ``min`` of all seen values at the first round
``r >= 2`` with ``W_r = W_{r-1}``; decide unconditionally at round
``t + 2``.

Safety sketch (crash model): if ``W_r = W_{r-1}`` at ``p``, then any
value known to any live process at the end of round ``r`` travelled
through a relay alive in round ``r-1`` — which therefore reached ``p``
in round ``r``.  So ``p``'s view dominates everyone's, ``p`` keeps
broadcasting it, and all correct processes converge to exactly ``p``'s
view one round later.  The property-based tests drive this across random
crash schedules; the omission model breaks it exactly the way §3
describes for all crash-style reasoning (see
:mod:`repro.protocols.floodset`).
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


class EarlyStoppingConsensus(Process):
    """FloodSet with the no-new-failure early-decision rule."""

    def __init__(
        self, pid: ProcessId, n: int, t: int, proposal: Payload
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.seen: set[Payload] = {proposal}
        self._heard_previous: frozenset[ProcessId] | None = None

    @property
    def last_round(self) -> Round:
        """Unconditional decision by round ``t + 2``."""
        return self.t + 2

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        payload = tuple(sorted(self.seen, key=repr))
        return {
            other: payload
            for other in range(self.n)
            if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        for _, payload in sorted(received.items()):
            if isinstance(payload, tuple):
                self.seen.update(payload)
        heard = frozenset(received.keys()) | {self.pid}
        stabilized = (
            self._heard_previous is not None
            and heard == self._heard_previous
        )
        self._heard_previous = heard
        if self.decision is None and (
            stabilized or round_ == self.last_round
        ):
            self.decide(min(self.seen, key=repr))


def early_stopping_spec(n: int, t: int) -> ProtocolSpec:
    """Early-stopping crash consensus as a spec (horizon ``t + 2``)."""

    def factory(
        pid: ProcessId, proposal: Payload
    ) -> EarlyStoppingConsensus:
        return EarlyStoppingConsensus(pid, n, t, proposal)

    return ProtocolSpec(
        name="early-stopping-consensus",
        n=n,
        t=t,
        rounds=t + 2,
        factory=factory,
        authenticated=False,
    )
