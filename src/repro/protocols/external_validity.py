"""Byzantine agreement with External Validity (§4.3, Corollary 1).

Blockchain-style agreement: the decided value must satisfy a globally
verifiable predicate ``valid(·)`` — here, "a transaction correctly signed
by its issuing client".  The §4.3 discussion notes that the input-
configuration formalism would classify this as trivial, yet no process can
decide a transaction it has never seen; Corollary 1 still applies to any
such algorithm with two fully-correct executions deciding differently —
which this one has (decide-what-leader-0-proposed when leader 0 is
correct), so the ``t²/32`` bound binds (experiment E8).

Protocol: ``t+1`` parallel Dolev–Strong broadcasts, one per process in
``0..t``; decide the output of the lowest-index broadcast that is a valid
transaction.  Per-instance agreement makes the choice common; among
``t+1`` designated senders at least one is correct and broadcasts its own
(valid) proposal, giving Termination with a valid decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, SignatureScheme
from repro.protocols.base import ProtocolSpec
from repro.protocols.interactive_consistency import ParallelBroadcastIC
from repro.types import Payload, ProcessId

Validator = Callable[[Payload], bool]
"""The globally verifiable predicate ``valid(·)`` of External Validity."""


@dataclass(frozen=True, slots=True)
class Transaction:
    """A client-signed transaction — the blockchain workload of §4.3.

    Attributes:
        client: issuing client's id (clients have their own key space,
            distinct from process keys).
        body: arbitrary transaction content.
        signature: the client's signature over ``(client, body)``.
    """

    client: int
    body: Hashable
    signature: Signature

    def signed_content(self) -> tuple:
        """The content the client's signature must cover."""
        return ("tx", self.client, self.body)

    def canonical_content(self) -> tuple:
        """Canonical-encoding hook (see
        :func:`repro.crypto.signatures.canonical_bytes`) so transactions
        can themselves be signed over, e.g. inside broadcast chains."""
        return ("tx-object", self.client, self.body, self.signature)


class ClientPool:
    """Key management for transaction-issuing clients.

    A separate :class:`KeyRegistry` namespace: client ``c`` signs with key
    ``c`` of the pool's registry.  The resulting
    :meth:`validator` is the globally verifiable predicate.
    """

    def __init__(
        self, clients: int, seed: bytes | str = b"repro-clients"
    ) -> None:
        self._scheme = SignatureScheme(KeyRegistry(clients, seed))
        self.clients = clients

    def issue(self, client: int, body: Hashable) -> Transaction:
        """A correctly signed transaction from ``client``."""
        signer = self._scheme.signer_for(client)
        signature = signer.sign(("tx", client, body))
        return Transaction(client=client, body=body, signature=signature)

    def forge(self, client: int, body: Hashable) -> Transaction:
        """A *badly* signed transaction (wrong content under the tag).

        Used by tests and adversaries: it fails :meth:`validator`.
        """
        signer = self._scheme.signer_for(client)
        signature = signer.sign(("not-a-tx", client, body))
        return Transaction(client=client, body=body, signature=signature)

    def validator(self) -> Validator:
        """The predicate ``valid(v)``: v is a correctly signed transaction."""

        def valid(value: Payload) -> bool:
            return isinstance(
                value, Transaction
            ) and self._scheme.verify(
                value.signature, value.signed_content()
            )

        return valid


class ExternalValidityAgreement(ParallelBroadcastIC):
    """First-valid-of-(t+1)-broadcasts agreement (see module docstring)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        scheme: SignatureScheme,
        validator: Validator,
        fallback: Payload,
    ) -> None:
        super().__init__(
            pid,
            n,
            t,
            proposal,
            scheme=scheme,
            senders=tuple(range(t + 1)),
        )
        self.validator = validator
        self.fallback = fallback

    def combine(self, decisions: tuple[Payload, ...]) -> Payload:
        for decision in decisions:
            if self.validator(decision):
                return decision
        # Reachable only if every designated sender 0..t is faulty or
        # proposed an invalid value — impossible when correct processes
        # propose valid transactions, but a total function is safer than a
        # crash on adversarial inputs.
        return self.fallback


def external_validity_spec(
    n: int,
    t: int,
    validator: Validator,
    fallback: Payload,
    *,
    seed: bytes | str = b"repro-ev",
) -> ProtocolSpec:
    """External-validity agreement as a :class:`ProtocolSpec`.

    Args:
        validator: the globally verifiable predicate.
        fallback: decided only if all ``t+1`` designated broadcasts yield
            invalid values (cannot happen with correct proposals; see
            :meth:`ExternalValidityAgreement.combine`).
    """
    scheme = SignatureScheme(KeyRegistry(n, seed))

    def factory(
        pid: ProcessId, proposal: Payload
    ) -> ExternalValidityAgreement:
        return ExternalValidityAgreement(
            pid,
            n,
            t,
            proposal,
            scheme=scheme,
            validator=validator,
            fallback=fallback,
        )

    return ProtocolSpec(
        name="external-validity",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=True,
    )
