"""Correct weak consensus (§1, §3).

*Weak Validity*: if **all** processes are correct and they all propose the
same value, that value must be decided.  Any other scenario leaves the
decision unconstrained (within ``V_O``), which is what makes weak consensus
the weakest non-trivial agreement problem (Lemma 6) — and what makes its
``t²/32`` lower bound (Lemma 1) so strong.

The implementation decides the designated process 0's proposal as
broadcast by Dolev–Strong, falling back to ``default`` when the broadcast
exposes a faulty sender:

* *Termination* / *Agreement* — inherited from Dolev–Strong (any ``t<n``).
* *Weak Validity* — if everyone is correct and proposes ``b``, process 0
  is correct and broadcasts ``b``, so all decide ``b``.

Because Byzantine resilience subsumes omission resilience, the protocol is
also a correct omission-model weak consensus — the setting of Lemma 1 —
and its fault-free message complexity is ≈ ``n²`` ≥ ``t²/32``: the bound
is respected, as experiment E1 verifies.  (A naive "flood proposals and
decide 0 iff all were 0" protocol is *not* correct under omission faults:
a faulty sender reaching one correct process but not another in the final
round splits the decision.  The test-suite demonstrates that failure mode
explicitly.)
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import (
    SENDER_FAULTY,
    DolevStrongProcess,
    dolev_strong_spec,
)
from repro.sim.process import Process
from repro.types import Bit, Payload, ProcessId, Round


class BroadcastWeakConsensus(Process):
    """Weak consensus by broadcasting process 0's proposal (any ``t<n``)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        inner: DolevStrongProcess,
        default: Payload = 1,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.inner = inner
        self.default = default

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        return self.inner.outgoing(round_)

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        self.inner.deliver(round_, received)
        if self.inner.decision is not None and self.decision is None:
            broadcast = self.inner.decision
            if broadcast == SENDER_FAULTY:
                self.decide(self.default)
            else:
                self.decide(broadcast)


def broadcast_weak_consensus_spec(
    n: int,
    t: int,
    *,
    default: Bit = 1,
    seed: bytes | str = b"repro-weak",
) -> ProtocolSpec:
    """Weak consensus via Dolev–Strong broadcast of process 0's proposal."""
    ds = dolev_strong_spec(n, t, sender=0, seed=seed, instance="weak")

    def factory(pid: ProcessId, proposal: Payload) -> BroadcastWeakConsensus:
        inner = ds.factory(pid, proposal)
        assert isinstance(inner, DolevStrongProcess)
        return BroadcastWeakConsensus(
            pid, n, t, proposal, inner=inner, default=default
        )

    return ProtocolSpec(
        name="weak-consensus-broadcast",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=True,
    )


class NaiveFloodingWeakConsensus(Process):
    """The *incorrect* textbook attempt, kept as a counterexample.

    Floods all known ``(origin, proposal)`` pairs for ``t+1`` rounds and
    decides 0 iff it learned a 0-proposal... no — iff it learned that
    *every* process proposed 0.  Under crash faults this is the classic
    FloodSet argument; under **omission** faults it is unsound: a faulty
    process whose sends are dropped towards one correct process but not
    another in the last round splits the correct decisions.  The
    test-suite constructs that execution (``tests/protocols/
    test_weak_consensus.py``), illustrating why the paper's lower bound
    cannot be dodged by cheap flooding.
    """

    def __init__(
        self, pid: ProcessId, n: int, t: int, proposal: Payload
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.known: dict[ProcessId, Payload] = {pid: proposal}

    @property
    def last_round(self) -> Round:
        return self.t + 1

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        payload = tuple(sorted(self.known.items()))
        return {
            other: payload for other in range(self.n) if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        for _, payload in sorted(received.items()):
            if not isinstance(payload, tuple):
                continue
            for entry in payload:
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    continue
                origin, value = entry
                if (
                    isinstance(origin, int)
                    and 0 <= origin < self.n
                    and origin not in self.known
                ):
                    self.known[origin] = value
        if round_ == self.last_round:
            all_zero = len(self.known) == self.n and all(
                value == 0 for value in self.known.values()
            )
            self.decide(0 if all_zero else 1)


def naive_flooding_spec(n: int, t: int) -> ProtocolSpec:
    """The unsound flooding protocol (counterexample; see class docs)."""

    def factory(
        pid: ProcessId, proposal: Payload
    ) -> NaiveFloodingWeakConsensus:
        return NaiveFloodingWeakConsensus(pid, n, t, proposal)

    return ProtocolSpec(
        name="naive-flooding-weak-consensus",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=False,
    )
