"""Strong consensus wrappers (§1, §5.3).

*Strong Validity*: if all **correct** processes propose the same value,
that value must be decided.  Theorem 5 shows authenticated solvability
requires ``n > 2t`` (via the containment condition failing at ``n = 2t``);
the classical constructions used here need ``n > 3t`` (unauthenticated
King algorithm / EIG) or majority-style reasoning for the authenticated
variant built on interactive consistency.

The authenticated variant is exactly the Lemma-9 recipe specialized to
strong validity: run IC, then apply the Γ function "majority value of the
decided vector, default otherwise".  For ``n > 2t`` the correct processes'
``n - t > t`` slots dominate any admissible tie-break, realizing Strong
Validity; Agreement and Termination come from IC.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import SENDER_FAULTY
from repro.protocols.eig import eig_consensus_spec
from repro.protocols.interactive_consistency import authenticated_ic_spec
from repro.protocols.phase_king import phase_king_spec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


class ICMajorityConsensus(Process):
    """Authenticated strong consensus: IC + majority-Γ (``n > 2t``)."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        inner: Process,
        default: Payload,
    ) -> None:
        if n <= 2 * t:
            raise ValueError(
                f"strong consensus requires n > 2t (Theorem 5), "
                f"got n={n}, t={t}"
            )
        super().__init__(pid, n, t, proposal)
        self.inner = inner
        self.default = default

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        return self.inner.outgoing(round_)

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        self.inner.deliver(round_, received)
        vector = self.inner.decision
        if vector is not None and self.decision is None:
            self.decide(self._gamma(vector))

    def _gamma(self, vector: Payload) -> Payload:
        """Majority of the IC vector; any value proposed by ``> t`` slots
        must be the unanimous correct proposal when one exists."""
        if not isinstance(vector, tuple):
            return self.default
        counts: dict[Payload, int] = {}
        for value in vector:
            if value == SENDER_FAULTY:
                continue
            counts[value] = counts.get(value, 0) + 1
        best: Payload | None = None
        best_count = 0
        for value, count in sorted(
            counts.items(), key=lambda item: repr(item[0])
        ):
            if count > best_count:
                best, best_count = value, count
        if best is not None and best_count > self.t:
            return best
        return self.default


def authenticated_strong_consensus_spec(
    n: int,
    t: int,
    default: Payload = 0,
    *,
    seed: bytes | str = b"repro-strong",
) -> ProtocolSpec:
    """Authenticated strong consensus for ``n > 2t`` (IC + majority Γ)."""
    if n <= 2 * t:
        raise ValueError(
            f"strong consensus requires n > 2t (Theorem 5), n={n}, t={t}"
        )
    ic = authenticated_ic_spec(n, t, seed=seed)

    def factory(pid: ProcessId, proposal: Payload) -> ICMajorityConsensus:
        return ICMajorityConsensus(
            pid,
            n,
            t,
            proposal,
            inner=ic.factory(pid, proposal),
            default=default,
        )

    return ProtocolSpec(
        name="strong-consensus-ic",
        n=n,
        t=t,
        rounds=ic.rounds,
        factory=factory,
        authenticated=True,
    )


def unauthenticated_strong_consensus_spec(
    n: int, t: int, default: Payload = 0, *, algorithm: str = "phase-king"
) -> ProtocolSpec:
    """Unauthenticated strong consensus for ``n > 3t``.

    Args:
        algorithm: ``"phase-king"`` (polynomial messages) or ``"eig"``
            (exponential messages, the textbook construction).
    """
    if algorithm == "phase-king":
        return phase_king_spec(n, t, default=default).renamed(
            "strong-consensus-phase-king"
        )
    if algorithm == "eig":
        return eig_consensus_spec(n, t, default=default).renamed(
            "strong-consensus-eig"
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")
