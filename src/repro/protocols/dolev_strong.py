"""Dolev–Strong authenticated Byzantine broadcast ([52]; §5.1, §6).

The classic ``t+1``-round protocol solving Byzantine broadcast for *any*
``t < n`` in the authenticated setting:

* Round 1: the designated sender signs its value (a 1-chain) and sends it
  to everyone.
* Round ``r`` (``2 <= r <= t+1``): every process relays, with its own
  signature appended, each value it *accepted* in round ``r-1``; a value is
  accepted in round ``r`` iff it arrives with a valid chain of at least
  ``r`` distinct signatures starting with the sender's.  A process relays
  at most two distinct values — two are already proof of sender
  equivocation.
* After round ``t+1``: if exactly one value was accepted, decide it;
  otherwise decide the public default :data:`SENDER_FAULTY`.

The chain-length argument gives Agreement and Termination for any ``t <
n``; *Sender Validity* (a correct sender's value is decided) holds because
nobody can forge the sender's signature on a second value.

Message complexity is Θ(n²) per accepted value for correct relays — the
quadratic behaviour the Dolev–Reischuk bound says is unavoidable, measured
empirically in experiment E7.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.crypto.chains import SignedChain, start_chain, verify_chain
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SignatureScheme, Signer
from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round

SENDER_FAULTY = "SENDER-FAULTY"
"""The public default decided when the sender provably misbehaved."""

_MAX_RELAYED_VALUES = 2


class DolevStrongProcess(Process):
    """One process of the Dolev–Strong broadcast.

    Args:
        pid: this process.
        n: system size.
        t: tolerated faults (any ``t < n``).
        proposal: this process's input; only the ``sender``'s is used.
        sender: the designated broadcaster.
        scheme: the signature scheme (public verification).
        signer: this process's signing capability.
        instance: domain-separation tag for chains (parallel broadcasts).
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        sender: ProcessId,
        scheme: SignatureScheme,
        signer: Signer,
        instance: Hashable = "ds",
    ) -> None:
        super().__init__(pid, n, t, proposal)
        if signer.pid != pid:
            raise ValueError(
                f"p{pid} was handed the signer of p{signer.pid}"
            )
        self.sender = sender
        self.scheme = scheme
        self.signer = signer
        self.instance = instance
        self.extracted: dict[Hashable, SignedChain] = {}
        self._pending_relay: list[SignedChain] = []
        if pid == sender:
            self.extracted[proposal] = start_chain(
                signer, instance, proposal
            )

    @property
    def last_round(self) -> Round:
        """Round ``t+1``, after which the decision is taken."""
        return self.t + 1

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == 1:
            if self.pid != self.sender:
                return {}
            chain = next(iter(self.extracted.values()))
            return self._broadcast((chain,))
        if round_ <= self.last_round and self._pending_relay:
            chains = tuple(
                sorted(
                    self._pending_relay,
                    key=lambda chain: repr(chain.value),
                )
            )
            self._pending_relay = []
            return self._broadcast(chains)
        return {}

    def _broadcast(
        self, chains: tuple[SignedChain, ...]
    ) -> dict[ProcessId, Payload]:
        return {
            other: chains for other in range(self.n) if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ <= self.last_round:
            for _, payload in sorted(received.items()):
                self._absorb(round_, payload)
        if round_ == self.last_round:
            self._decide_now()

    def _absorb(self, round_: Round, payload: Payload) -> None:
        """Accept valid, sufficiently long chains on new values."""
        if not isinstance(payload, tuple):
            return  # Byzantine garbage: ignore
        for chain in payload:
            if not isinstance(chain, SignedChain):
                continue
            if chain.instance != self.instance:
                continue
            if chain.value in self.extracted:
                continue
            if len(self.extracted) >= _MAX_RELAYED_VALUES:
                return  # two values already prove equivocation
            if not verify_chain(
                self.scheme, chain, self.sender, minimum_length=round_
            ):
                continue
            self.extracted[chain.value] = chain
            if round_ < self.last_round and not chain.has_signer(
                self.pid
            ):
                self._pending_relay.append(chain.extend(self.signer))

    def _decide_now(self) -> None:
        if len(self.extracted) == 1:
            self.decide(next(iter(self.extracted.keys())))
        else:
            self.decide(SENDER_FAULTY)


def dolev_strong_spec(
    n: int,
    t: int,
    sender: ProcessId = 0,
    *,
    seed: bytes | str = b"repro-ds",
    instance: Hashable = "ds",
) -> ProtocolSpec:
    """A Dolev–Strong broadcast instance as a :class:`ProtocolSpec`.

    The key registry is derived from ``seed``; pass the same seed when an
    adversary needs corrupted processes' signers (see
    :mod:`repro.protocols.byzantine_strategies`).
    """
    scheme = SignatureScheme(KeyRegistry(n, seed))

    def factory(pid: ProcessId, proposal: Payload) -> DolevStrongProcess:
        return DolevStrongProcess(
            pid,
            n,
            t,
            proposal,
            sender=sender,
            scheme=scheme,
            signer=scheme.signer_for(pid),
            instance=instance,
        )

    return ProtocolSpec(
        name=f"dolev-strong(sender={sender})",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=True,
    )


def scheme_for_spec(
    n: int, seed: bytes | str = b"repro-ds"
) -> SignatureScheme:
    """The signature scheme a :func:`dolev_strong_spec` with ``seed`` uses.

    Adversary strategies call this to obtain the signers of corrupted
    processes (and only those — handing out a correct process's signer
    would break the idealized-signature model).
    """
    return SignatureScheme(KeyRegistry(n, seed))
