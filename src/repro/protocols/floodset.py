"""FloodSet: crash-fault consensus by t+1 rounds of flooding ([82]).

The textbook synchronous consensus for **crash** faults: for ``t + 1``
rounds every process broadcasts the set of values it has seen; with at
most ``t`` crashes, some round is crash-free, after which all correct
processes hold identical sets — decide ``min``.

Why it lives in this repository: §3's central difficulty is that this
style of reasoning *breaks* in the omission model.  A crash is permanent
and symmetric; a send-omission can target a single receiver in the last
round, splitting the correct processes' sets after the "common round"
argument has run out of rounds.  The test-suite demonstrates both faces:
FloodSet is correct under every crash schedule (property-tested) and is
split by one omission-faulty process — the same failure shape as the
naive flooding weak consensus, and the reason the paper needs the far
subtler isolation/merge machinery for its bound.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


class FloodSetProcess(Process):
    """One process of FloodSet (crash model, ``t < n``)."""

    def __init__(
        self, pid: ProcessId, n: int, t: int, proposal: Payload
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.seen: set[Payload] = {proposal}

    @property
    def last_round(self) -> Round:
        """``t + 1`` rounds guarantee a crash-free round."""
        return self.t + 1

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.last_round:
            return {}
        payload = tuple(sorted(self.seen, key=repr))
        return {
            other: payload
            for other in range(self.n)
            if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.last_round:
            return
        for _, payload in sorted(received.items()):
            if isinstance(payload, tuple):
                self.seen.update(payload)
        if round_ == self.last_round:
            self.decide(min(self.seen, key=repr))


def floodset_spec(n: int, t: int) -> ProtocolSpec:
    """FloodSet as a spec.  Correct for crash faults only — see module
    docstring for the omission-model counterexample."""

    def factory(pid: ProcessId, proposal: Payload) -> FloodSetProcess:
        return FloodSetProcess(pid, n, t, proposal)

    return ProtocolSpec(
        name="floodset",
        n=n,
        t=t,
        rounds=t + 1,
        factory=factory,
        authenticated=False,
    )
