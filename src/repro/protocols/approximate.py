"""Synchronous Byzantine approximate agreement (§7; [2, 64, 84]).

The paper's future work asks about problems that do **not** require
Agreement; approximate agreement is the canonical one: correct processes
decide real values within ``ε`` of each other, inside the range of
correct inputs.  This module implements the classic trimmed-mean
iteration (Dolev–Lynch–Pinter–Stark–Weihl lineage) for ``n > 3t``:

Each round, every process broadcasts its value; each receiver collects
the ``n`` values (its own plus received; missing/malformed senders
contribute the receiver's own value, a safe substitution inside the
correct range... no — inside *its* current value, which is in range),
sorts them, discards the ``t`` lowest and ``t`` highest, and moves to the
midpoint of the surviving extremes.  Standard analysis: the spread of
correct values at least halves each round, and every correct value stays
within the initial correct range; after ``⌈log2(spread₀ / ε)⌉`` rounds
all correct values are ``ε``-close.

Because outputs may legitimately differ (by up to ε), approximate
agreement is **not** a val-agreement problem in the §4.1 sense — the
Ω(t²) theorem does not speak to it, which is precisely why the paper
lists it as an open direction.  The test-suite pins that boundary.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Payload, ProcessId, Round


def rounds_for_precision(spread: float, epsilon: float) -> int:
    """Rounds needed to shrink ``spread`` below ``epsilon`` (halving)."""
    if spread <= epsilon:
        return 1
    return max(1, math.ceil(math.log2(spread / epsilon)))


class ApproximateAgreementProcess(Process):
    """One process of trimmed-midpoint approximate agreement."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        rounds: int,
    ) -> None:
        if n <= 3 * t:
            raise ValueError(
                f"approximate agreement requires n > 3t, got n={n}, t={t}"
            )
        if not isinstance(proposal, (int, float)) or isinstance(
            proposal, bool
        ):
            raise ValueError(
                f"proposals must be numbers, got {proposal!r}"
            )
        super().__init__(pid, n, t, proposal)
        self.value = float(proposal)
        self.total_rounds = rounds

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self.total_rounds:
            return {}
        return {
            other: ("aa", self.value)
            for other in range(self.n)
            if other != self.pid
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ > self.total_rounds:
            return
        values = [self.value]
        for sender in range(self.n):
            if sender == self.pid:
                continue
            payload = received.get(sender)
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "aa"
                and isinstance(payload[1], (int, float))
                and not isinstance(payload[1], bool)
                and math.isfinite(payload[1])
            ):
                values.append(float(payload[1]))
            else:
                # A silent or garbled sender contributes our own value:
                # never pulls us outside the correct range.
                values.append(self.value)
        values.sort()
        trimmed = values[self.t : len(values) - self.t]
        self.value = (trimmed[0] + trimmed[-1]) / 2
        if round_ == self.total_rounds:
            self.decide(self.value)


def approximate_agreement_spec(
    n: int,
    t: int,
    *,
    rounds: int | None = None,
    spread: float = 1.0,
    epsilon: float = 1e-3,
) -> ProtocolSpec:
    """Approximate agreement as a spec (``n > 3t``).

    Args:
        rounds: explicit round count; default derives from
            ``spread``/``epsilon`` via the halving analysis.
        spread: expected initial spread of correct proposals.
        epsilon: target closeness of decisions.
    """
    horizon = (
        rounds
        if rounds is not None
        else rounds_for_precision(spread, epsilon)
    )

    def factory(
        pid: ProcessId, proposal: Payload
    ) -> ApproximateAgreementProcess:
        return ApproximateAgreementProcess(
            pid, n, t, proposal, rounds=horizon
        )

    return ProtocolSpec(
        name=f"approximate-agreement(rounds={horizon})",
        n=n,
        t=t,
        rounds=horizon,
        factory=factory,
        authenticated=False,
    )
