"""Sub-quadratic weak-consensus "cheaters" — the lower bound's prey (§3).

Theorem 2 says every correct weak consensus algorithm sends at least
``t²/32`` messages in some execution.  These protocols send (far) fewer —
so they *must* be incorrect, and the constructive content of the paper's
proof is that the incorrectness can be exhibited mechanically: the driver
in :mod:`repro.lowerbound.driver` runs the Lemma 2–5 pipeline against each
of them and produces a concrete, machine-verified violating execution.

Each cheater is a plausible-looking design a practitioner might try:

* :class:`SilentCheater` — zero messages: decide your own proposal.
* :class:`LeaderEchoCheater` — O(n): a leader collects proposals and
  announces the verdict.
* :class:`CommitteeCheater` — O(n·c): a c-member committee collects,
  verdicts are decided by committee majority.

All are deterministic state machines in the omission model, as Lemma 1
requires.
"""

from __future__ import annotations

from typing import Mapping

from repro.protocols.base import ProtocolSpec
from repro.sim.process import Process
from repro.types import Bit, Payload, ProcessId, Round


class SilentCheater(Process):
    """Decide your own proposal without any communication.

    Agreement obviously fails whenever proposals differ — but note that
    weak consensus only constrains executions; the driver still has to
    *construct* one with ≤ t omission faults where two *correct* processes
    disagree, which it does via the merge of round-1 isolations.
    """

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        return {}

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == 1:
            self.decide(self.proposal)


def silent_cheater_spec(n: int, t: int) -> ProtocolSpec:
    """:class:`SilentCheater` as a spec (horizon 1)."""

    def factory(pid: ProcessId, proposal: Payload) -> SilentCheater:
        return SilentCheater(pid, n, t, proposal)

    return ProtocolSpec(
        name="silent-cheater", n=n, t=t, rounds=1, factory=factory
    )


class LeaderEchoCheater(Process):
    """O(n) messages: everyone reports to a leader, who announces a verdict.

    Round 1: all send their proposal to the leader.  Round 2: the leader
    broadcasts 0 iff every report (plus its own proposal) was 0, else 1.
    Everyone decides the leader's verdict, defaulting to 1 if the verdict
    never arrives.

    The fragility the driver exploits: an isolated group never hears the
    verdict and defaults to 1 — but its round-1 *reports still reach the
    leader* (isolation drops only incoming traffic), so after the
    omission-swap the defaulting process becomes correct while the leader
    is blamed, splitting correct decisions.
    """

    LEADER: ProcessId = 0

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        default: Bit = 1,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.default = default
        self._reports: dict[ProcessId, Payload] = {pid: proposal}

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == 1 and self.pid != self.LEADER:
            return {self.LEADER: ("report", self.proposal)}
        if round_ == 2 and self.pid == self.LEADER:
            verdict = self._verdict()
            return {
                other: ("verdict", verdict)
                for other in range(self.n)
                if other != self.pid
            }
        return {}

    def _verdict(self) -> Bit:
        if len(self._reports) == self.n and all(
            value == 0 for value in self._reports.values()
        ):
            return 0
        return 1

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == 1 and self.pid == self.LEADER:
            for sender, payload in sorted(received.items()):
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "report"
                ):
                    self._reports[sender] = payload[1]
        if round_ == 2:
            if self.pid == self.LEADER:
                self.decide(self._verdict())
                return
            payload = received.get(self.LEADER)
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "verdict"
            ):
                self.decide(payload[1])
            else:
                self.decide(self.default)


def leader_echo_spec(n: int, t: int, default: Bit = 1) -> ProtocolSpec:
    """:class:`LeaderEchoCheater` as a spec (horizon 2)."""

    def factory(pid: ProcessId, proposal: Payload) -> LeaderEchoCheater:
        return LeaderEchoCheater(pid, n, t, proposal, default=default)

    return ProtocolSpec(
        name="leader-echo-cheater", n=n, t=t, rounds=2, factory=factory
    )


class CommitteeCheater(Process):
    """O(n·c) messages: a committee of ``c`` leaders votes on the verdict.

    Round 1: everyone reports its proposal to every committee member.
    Round 2: each committee member broadcasts its local verdict (0 iff all
    ``n`` reports were 0).  Everyone decides the majority verdict among
    the committee messages it received (absent votes count as 1, ties
    decide 1).

    Replicating the leader does not help: isolating a group that contains
    *no* committee member still silences all verdicts towards it, and the
    same swap argument applies.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        committee_size: int,
        default: Bit = 1,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        if not 1 <= committee_size <= n:
            raise ValueError(
                f"committee size {committee_size} outside [1, {n}]"
            )
        self.committee: tuple[ProcessId, ...] = tuple(
            range(committee_size)
        )
        self.default = default
        self._reports: dict[ProcessId, Payload] = {pid: proposal}

    @property
    def on_committee(self) -> bool:
        """Whether this process is a committee member."""
        return self.pid in self.committee

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == 1:
            return {
                member: ("report", self.proposal)
                for member in self.committee
                if member != self.pid
            }
        if round_ == 2 and self.on_committee:
            verdict = self._verdict()
            return {
                other: ("verdict", verdict)
                for other in range(self.n)
                if other != self.pid
            }
        return {}

    def _verdict(self) -> Bit:
        if len(self._reports) == self.n and all(
            value == 0 for value in self._reports.values()
        ):
            return 0
        return 1

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == 1 and self.on_committee:
            for sender, payload in sorted(received.items()):
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "report"
                ):
                    self._reports[sender] = payload[1]
        if round_ == 2:
            votes: list[Bit] = []
            own_vote = self._verdict() if self.on_committee else None
            for member in self.committee:
                if member == self.pid:
                    votes.append(own_vote)
                    continue
                payload = received.get(member)
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 2
                    and payload[0] == "verdict"
                ):
                    votes.append(payload[1])
                else:
                    votes.append(self.default)
            zeros = sum(1 for vote in votes if vote == 0)
            self.decide(0 if zeros * 2 > len(votes) else 1)


def committee_cheater_spec(
    n: int, t: int, committee_size: int | None = None, default: Bit = 1
) -> ProtocolSpec:
    """:class:`CommitteeCheater` as a spec (horizon 2).

    The default committee size ``max(1, ⌊√t⌋)`` keeps the message count at
    ``O(n·√t)`` — asymptotically ``o(t²)`` when ``n ∈ O(t)``, so the
    Theorem-2 floor eventually dwarfs it.  (A committee of ``Θ(t)`` would
    be quadratic and outside the cheater story.)
    """
    import math

    size = (
        committee_size
        if committee_size is not None
        else max(1, math.isqrt(t))
    )

    def factory(pid: ProcessId, proposal: Payload) -> CommitteeCheater:
        return CommitteeCheater(
            pid, n, t, proposal, committee_size=size, default=default
        )

    return ProtocolSpec(
        name=f"committee-cheater(c={size})",
        n=n,
        t=t,
        rounds=2,
        factory=factory,
    )


class RingTokenCheater(Process):
    """O(n) messages: a conjunction token around the ring, then a verdict.

    Process 0 starts a token carrying "all proposals so far are 0"; process
    ``j`` expects it in round ``j``, folds in its own proposal, and passes
    it on (forwarding a poisoned token if it arrives late or never — a
    deterministic reaction to detected silence).  Process ``n-1``
    broadcasts the final verdict in round ``n``; everyone decides it,
    defaulting to 1 when the verdict goes missing.

    ≈ ``2n`` messages total.  Unlike the one-shot cheaters, this one's
    decision under group isolation genuinely depends on *when* the group
    is isolated — its default-bit behaviour flips at a critical round, so
    the driver must walk the full Lemma-4 interpolation (stage 4) to break
    it.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        default: Bit = 1,
    ) -> None:
        super().__init__(pid, n, t, proposal)
        self.default = default
        self._token_value: bool | None = (
            None if pid != 0 else proposal == 0
        )

    @property
    def verdict_round(self) -> Round:
        """Round ``n``: the last ring member broadcasts the verdict."""
        return self.n

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ == self.pid + 1 and self.pid != self.n - 1:
            # Our slot in the ring: pass the (possibly poisoned) token.
            token = bool(self._token_value)
            return {self.pid + 1: ("token", token)}
        if round_ == self.verdict_round and self.pid == self.n - 1:
            verdict = 0 if self._token_value else 1
            return {
                other: ("verdict", verdict)
                for other in range(self.n)
                if other != self.pid
            }
        return {}

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ == self.pid and self.pid != 0:
            payload = received.get(self.pid - 1)
            arrived = (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "token"
                and payload[1] is True
            )
            self._token_value = arrived and self.proposal == 0
        if round_ == self.verdict_round:
            if self.pid == self.n - 1:
                self.decide(0 if self._token_value else 1)
                return
            payload = received.get(self.n - 1)
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "verdict"
            ):
                self.decide(payload[1])
            else:
                self.decide(self.default)


def ring_token_spec(n: int, t: int, default: Bit = 1) -> ProtocolSpec:
    """:class:`RingTokenCheater` as a spec (horizon ``n``)."""

    def factory(pid: ProcessId, proposal: Payload) -> RingTokenCheater:
        return RingTokenCheater(pid, n, t, proposal, default=default)

    return ProtocolSpec(
        name="ring-token-cheater", n=n, t=t, rounds=n, factory=factory
    )


def seeded_committee_cheater_spec(
    n: int, t: int, seed: int = 0, default: Bit = 1
) -> ProtocolSpec:
    """A 'randomized' committee cheater with its coins fixed by ``seed``.

    Samples a pseudo-random committee of ``max(1, ⌊√t⌋)`` members from a
    hash of ``seed`` — the sampling-based sub-quadratic designs of §6's
    randomized lines, with the coin flips baked in.  The paper's model is
    deterministic, so this is exactly what a randomized protocol looks
    like *after* conditioning on its randomness: each seed instance is a
    deterministic algorithm, and Theorem 2 breaks every one of them.
    (Whether randomization helps against a weaker adversary over the
    *distribution* of seeds is the paper's §7 future work.)
    """
    import hashlib
    import math

    size = max(1, math.isqrt(t))
    digest = hashlib.sha256(
        f"committee|{n}|{t}|{seed}".encode()
    ).digest()
    scored = sorted(
        range(n),
        key=lambda pid: (digest[pid % len(digest)] ^ (pid * 131) % 251, pid),
    )
    committee = tuple(sorted(scored[:size]))

    def factory(pid: ProcessId, proposal: Payload) -> "SampledCommitteeCheater":
        return SampledCommitteeCheater(
            pid, n, t, proposal, committee=committee, default=default
        )

    return ProtocolSpec(
        name=f"seeded-committee-cheater(seed={seed})",
        n=n,
        t=t,
        rounds=2,
        factory=factory,
    )


class SampledCommitteeCheater(CommitteeCheater):
    """A :class:`CommitteeCheater` over an arbitrary committee set."""

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Payload,
        committee: tuple[ProcessId, ...],
        default: Bit = 1,
    ) -> None:
        super().__init__(
            pid, n, t, proposal, committee_size=1, default=default
        )
        if not committee:
            raise ValueError("committee must be non-empty")
        self.committee = tuple(sorted(committee))


ALL_CHEATERS = (
    silent_cheater_spec,
    leader_echo_spec,
    committee_cheater_spec,
    ring_token_spec,
)
"""Spec builders for every cheater, for sweep harnesses (experiment E3)."""
