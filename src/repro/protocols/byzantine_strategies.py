"""Reusable Byzantine machine strategies (§2: arbitrary deviation).

Each strategy is a callable ``(pid, honest_factory, proposal) -> Process``
suitable for :class:`repro.sim.adversary.ByzantineAdversary`.  They cover
the classic attack shapes the protocol test-suites exercise:

* :func:`mute` — send nothing, ever.
* :func:`crash_at` — behave honestly, then stop mid-execution.
* :func:`two_faced` — run two honest machines with different proposals and
  show each half of the system a different face (equivocation without
  breaking any signature — the honest machines sign only as this process).
* :func:`equivocating_sender` — a Dolev–Strong sender signing two values.
* :func:`garbage` — deterministic junk payloads to everyone.

Strategies never receive another process's signing key, so the idealized-
signature boundary (§5.1) is respected by construction.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.crypto.chains import start_chain
from repro.crypto.signatures import SignatureScheme
from repro.sim.process import Process, ProcessFactory
from repro.types import Payload, ProcessId, Round

Strategy = Callable[[ProcessId, ProcessFactory, Payload], Process]


def mute() -> Strategy:
    """A machine that sends nothing and never decides."""

    def build(
        pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process:
        honest = honest_factory(pid, proposal)

        class _Mute(Process):
            def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
                return {}

            def deliver(
                self,
                round_: Round,
                received: Mapping[ProcessId, Payload],
            ) -> None:
                return None

        return _Mute(pid, honest.n, honest.t, proposal)

    return build


def crash_at(crash_round: Round) -> Strategy:
    """Honest behaviour through round ``crash_round - 1``, then silence."""

    def build(
        pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process:
        honest = honest_factory(pid, proposal)

        class _Crashing(Process):
            def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
                if round_ >= crash_round:
                    return {}
                return honest.outgoing(round_)

            def deliver(
                self,
                round_: Round,
                received: Mapping[ProcessId, Payload],
            ) -> None:
                if round_ < crash_round:
                    honest.deliver(round_, received)

        return _Crashing(pid, honest.n, honest.t, proposal)

    return build


def two_faced(
    proposal_low: Payload, proposal_high: Payload
) -> Strategy:
    """Show low-id processes one honest run and high-id processes another.

    Runs two honest machines side by side, one proposing
    ``proposal_low`` and one ``proposal_high``; messages to the lower half
    of the id space come from the first, the rest from the second.  Each
    machine is fed only the messages "its" half sent back, keeping both
    internally consistent — the strongest splitting attack expressible
    without forging signatures.
    """

    def build(
        pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process:
        low = honest_factory(pid, proposal_low)
        high = honest_factory(pid, proposal_high)
        boundary = low.n // 2

        class _TwoFaced(Process):
            def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
                merged: dict[ProcessId, Payload] = {}
                for receiver, payload in low.outgoing(round_).items():
                    if receiver < boundary:
                        merged[receiver] = payload
                for receiver, payload in high.outgoing(round_).items():
                    if receiver >= boundary:
                        merged[receiver] = payload
                return merged

            def deliver(
                self,
                round_: Round,
                received: Mapping[ProcessId, Payload],
            ) -> None:
                low.deliver(
                    round_,
                    {
                        sender: payload
                        for sender, payload in received.items()
                        if sender < boundary
                    },
                )
                high.deliver(
                    round_,
                    {
                        sender: payload
                        for sender, payload in received.items()
                        if sender >= boundary
                    },
                )

        return _TwoFaced(pid, low.n, low.t, proposal)

    return build


def equivocating_sender(
    scheme: SignatureScheme,
    value_low: Hashable,
    value_high: Hashable,
    instance: Hashable = "ds",
) -> Strategy:
    """A Dolev–Strong designated sender signing *two* different values.

    Sends a 1-chain on ``value_low`` to the lower half of the id space and
    a 1-chain on ``value_high`` to the upper half in round 1, then goes
    silent.  Dolev–Strong must converge on the public default
    (:data:`~repro.protocols.dolev_strong.SENDER_FAULTY`) or on one value
    at *all* correct processes — never split (tested in the suite).
    """

    def build(
        pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process:
        honest = honest_factory(pid, proposal)
        signer = scheme.signer_for(pid)  # own key only: no forgery
        chain_low = start_chain(signer, instance, value_low)
        chain_high = start_chain(signer, instance, value_high)
        boundary = honest.n // 2

        class _Equivocator(Process):
            def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
                if round_ != 1:
                    return {}
                return {
                    receiver: (
                        (chain_low,)
                        if receiver < boundary
                        else (chain_high,)
                    )
                    for receiver in range(self.n)
                    if receiver != self.pid
                }

            def deliver(
                self,
                round_: Round,
                received: Mapping[ProcessId, Payload],
            ) -> None:
                return None

        return _Equivocator(pid, honest.n, honest.t, proposal)

    return build


def garbage(marker: Hashable = "garbage") -> Strategy:
    """Deterministic junk to everyone every round (parser fuzzing)."""

    def build(
        pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process:
        honest = honest_factory(pid, proposal)

        class _Garbage(Process):
            def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
                payload = (marker, self.pid, round_)
                return {
                    receiver: payload
                    for receiver in range(self.n)
                    if receiver != self.pid
                }

            def deliver(
                self,
                round_: Round,
                received: Mapping[ProcessId, Payload],
            ) -> None:
                return None

        return _Garbage(pid, honest.n, honest.t, proposal)

    return build
