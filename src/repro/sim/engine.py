"""The event-driven round engine and its pluggable observers.

The synchronous round loop (§2, A.1) is a fixed skeleton: compute states,
collect sends, apply the adversary's omissions, deliver.  Everything that
*varies* between callers — recording a full Appendix-A trace, accounting
message complexity, validating the model conditions, deciding when a run
may halt — is a per-round *observation*.  :class:`RoundEngine` therefore
emits one :class:`RoundEvent` per simulated round to a list of
:class:`RoundObserver` instances, each of which consumes the event stream
independently:

* :class:`TraceRecorder` — accumulates the fragments into the classic
  :class:`~repro.sim.execution.Execution` record, bit-for-bit identical to
  the pre-engine recorder (asserted by the golden-equivalence tests).
* :class:`IncrementalChecker` — enforces the Appendix-A fragment and
  execution conditions *round by round*, so a model violation aborts the
  run at the offending round instead of after the horizon.
* :class:`EarlyStopPolicy` — requests a halt once the watched processes
  have all decided.  Sound because decisions are write-once (A.1.5
  condition 6) and every protocol declares a sound ``max_rounds(n, t)``:
  the truncated run is a prefix of the full run with the same decisions.
* :class:`MachineCheckpointer` — deep-copies the machine array at
  registered round boundaries so a later simulation can *resume*
  mid-execution (used by the lower-bound driver to share the fault-free
  prefix across the Lemma-4 critical-round scan).
* :class:`~repro.sim.metrics.StreamingComplexity` — the incremental
  message-complexity accountant (lives with the other metrics).

Observers must not mutate the event or the machines; the engine owns both.
An observer may set its ``stop_requested`` attribute to ``True`` during
:meth:`RoundObserver.on_round`; the engine finishes dispatching the
current round to every observer, then halts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ModelViolation
from repro.sim.adversary import Adversary
from repro.sim.execution import Execution
from repro.sim.message import Message
from repro.sim.process import Process
from repro.sim.state import Behavior, Fragment, StateSnapshot, check_fragment
from repro.types import Payload, ProcessId, Round

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import SimulationConfig


def object_counts() -> dict[str, int]:
    """A snapshot of the engine's object-materialization counters.

    Monotone, interpreter-wide tallies of the objects the round loop
    churns through: ``messages_materialized`` (every
    :class:`~repro.sim.message.Message` built), ``behaviors_built``
    (every :class:`~repro.sim.state.Behavior` record),
    ``channels_interned`` (distinct ``(sender, receiver)`` pairs the
    channel cache has interned), ``machine_snapshots`` (machines
    deep-copied by :class:`MachineCheckpointer`), plus the bitmask
    kernel's representation counters ``masks_built`` and ``popcounts``
    (see :mod:`repro.sim.kernel`).  Consumers — the benchmark
    observatory foremost — snapshot before and after a measured region
    and report the delta (:func:`object_counts_delta`): an
    allocation-shaped view of simulator cost that wall-clock timing
    cannot separate from noise.
    """
    from repro.sim.message import MATERIALIZED
    from repro.sim.state import BUILT

    return {
        "messages_materialized": MATERIALIZED.messages,
        "behaviors_built": BUILT.behaviors,
        "channels_interned": MATERIALIZED.channels,
        "machine_snapshots": SNAPSHOTS.machines,
        "masks_built": MATERIALIZED.masks,
        "popcounts": MATERIALIZED.popcounts,
    }


def object_counts_delta(before: dict[str, int]) -> dict[str, int]:
    """The per-key growth of :func:`object_counts` since ``before``."""
    after = object_counts()
    return {key: after[key] - before.get(key, 0) for key in after}


class _SnapshotCounts:
    """Machines deep-copied by :class:`MachineCheckpointer` (monotone)."""

    __slots__ = ("machines",)

    def __init__(self) -> None:
        self.machines = 0


SNAPSHOTS = _SnapshotCounts()
"""The interpreter-wide machine-snapshot tally."""


@dataclass(frozen=True)
class RoundEvent:
    """Everything an omniscient observer sees of one simulated round.

    Attributes:
        round: the 1-based round just simulated.
        corrupted: the adversary's corruption set *as of this round*
            (monotone under adaptive adversaries).
        fragments: the A.1.4 fragment of each process for this round,
            indexed by process id.
        all_sent: every message successfully sent this round, as one flat
            set (built once; also what the adversary's ``observe_round``
            hook receives).
        decisions: each process's decision *after* this round's delivery
            (``None`` while undecided).
    """

    round: Round
    corrupted: frozenset[ProcessId]
    fragments: tuple[Fragment, ...]
    all_sent: frozenset[Message]
    decisions: tuple[Payload | None, ...]

    def sent_by_correct(self) -> int:
        """Messages sent this round by processes outside ``corrupted``.

        The round's contribution to the §2 message complexity under the
        *current* corruption set — the quantity the tracing observer
        streams against the ``t²/32`` floor.  (An adaptive adversary may
        corrupt a sender later; final accounting always filters by the
        run's final faulty set, as :class:`StreamingComplexity` does.)
        """
        return sum(
            len(fragment.sent)
            for pid, fragment in enumerate(self.fragments)
            if pid not in self.corrupted
        )


class RoundObserver:
    """Base observer: all hooks are no-ops.

    Set ``self.stop_requested = True`` from :meth:`on_round` to ask the
    engine to halt after the current round (see :class:`EarlyStopPolicy`).
    """

    stop_requested: bool = False

    def on_run_start(
        self,
        config: "SimulationConfig",
        machines: Sequence[Process],
        adversary: Adversary,
    ) -> None:
        """Called once before the first simulated round."""

    def on_round(self, event: RoundEvent) -> None:
        """Called after each round's delivery completes."""

    def on_run_end(
        self,
        final_states: tuple[StateSnapshot, ...],
        corrupted: frozenset[ProcessId],
    ) -> None:
        """Called once after the last simulated round.

        ``final_states`` are the states at the start of the (never
        simulated) next round; ``corrupted`` is the adversary's final
        corruption set — the execution's faulty set ``F``.
        """


class RoundEngine:
    """Drives deterministic machines round by round, emitting events.

    Args:
        config: system size, corruption budget and horizon.
        machines: the ``n`` state machines, indexed by process id.
        adversary: the (static or adaptive) adversary to consult.
        observers: event consumers, notified in list order.
        first_round: where to start simulating (> 1 only when resuming a
            run whose earlier rounds are already known, e.g. from a
            checkpointed fault-free prefix; the machines must then be in
            their start-of-``first_round`` states and the adversary must
            be static, since its per-round hooks are not replayed).
    """

    def __init__(
        self,
        config: "SimulationConfig",
        machines: Sequence[Process],
        adversary: Adversary,
        observers: Sequence[RoundObserver] = (),
        *,
        first_round: Round = 1,
    ) -> None:
        if not 1 <= first_round <= config.rounds:
            raise ValueError(
                f"first_round {first_round} outside 1..{config.rounds}"
            )
        self._config = config
        self._machines = list(machines)
        self._adversary = adversary
        self._observers = list(observers)
        self._first_round = first_round
        self.rounds_run = 0
        self.stopped_early = False
        self.last_round = first_round - 1

    def run(self) -> None:
        """Simulate rounds until the horizon or an observer's stop request."""
        for observer in self._observers:
            observer.on_run_start(
                self._config, self._machines, self._adversary
            )
        for round_ in range(self._first_round, self._config.rounds + 1):
            event = self._step(round_)
            for observer in self._observers:
                observer.on_round(event)
            self.rounds_run += 1
            self.last_round = round_
            if any(
                observer.stop_requested for observer in self._observers
            ):
                self.stopped_early = round_ < self._config.rounds
                break
        final_states = tuple(
            machine.snapshot(self.last_round + 1)
            for machine in self._machines
        )
        for observer in self._observers:
            observer.on_run_end(final_states, self._adversary.corrupted)

    def _step(self, round_: Round) -> RoundEvent:
        """Simulate one round: states, sends, omissions, delivery."""
        adversary = self._adversary
        adversary.begin_round(round_)
        corrupted = adversary.corrupted
        machines = self._machines
        states = [machine.snapshot(round_) for machine in machines]
        sent: list[set[Message]] = [set() for _ in machines]
        send_omitted: list[set[Message]] = [set() for _ in machines]
        inboxes: list[list[Message]] = [[] for _ in machines]
        round_sent: set[Message] = set()
        for pid, machine in enumerate(machines):
            mapping = machine.validate_outgoing(
                round_, machine.outgoing(round_)
            )
            for receiver, payload in mapping.items():
                message = Message(pid, receiver, round_, payload)
                if pid in corrupted and adversary.send_omits(message):
                    send_omitted[pid].add(message)
                else:
                    sent[pid].add(message)
                    inboxes[receiver].append(message)
                    round_sent.add(message)
        fragments: list[Fragment] = []
        for pid, machine in enumerate(machines):
            # Single pass over the inbox: messages are unique per
            # (sender, receiver, round), and the inbox is already in
            # ascending sender order, so the delivered mapping needs no
            # sort and no intermediate rebuild.
            received: set[Message] = set()
            receive_omitted: set[Message] = set()
            delivered: dict[ProcessId, Payload] = {}
            if pid in corrupted:
                for message in inboxes[pid]:
                    if adversary.receive_omits(message):
                        receive_omitted.add(message)
                    else:
                        received.add(message)
                        delivered[message.sender] = message.payload
            else:
                for message in inboxes[pid]:
                    received.add(message)
                    delivered[message.sender] = message.payload
            fragments.append(
                Fragment(
                    state=states[pid],
                    sent=frozenset(sent[pid]),
                    send_omitted=frozenset(send_omitted[pid]),
                    received=frozenset(received),
                    receive_omitted=frozenset(receive_omitted),
                )
            )
            machine.deliver(round_, delivered)
        all_sent = frozenset(round_sent)
        adversary.observe_round(round_, all_sent)
        return RoundEvent(
            round=round_,
            corrupted=corrupted,
            fragments=tuple(fragments),
            all_sent=all_sent,
            decisions=tuple(machine.decision for machine in machines),
        )


class TraceRecorder(RoundObserver):
    """Accumulates events into the classic :class:`Execution` record.

    Args:
        prefix: per-process fragment sequences for rounds the engine will
            *not* simulate (rounds ``1 .. first_round - 1`` of a resumed
            run); empty for a run starting at round 1.
    """

    def __init__(
        self,
        prefix: Sequence[Sequence[Fragment]] | None = None,
    ) -> None:
        self._prefix = [list(row) for row in prefix] if prefix else None
        self._fragments: list[list[Fragment]] = []
        self._config: "SimulationConfig | None" = None
        self._final_states: tuple[StateSnapshot, ...] = ()
        self._corrupted: frozenset[ProcessId] = frozenset()

    def on_run_start(self, config, machines, adversary) -> None:
        self._config = config
        self._fragments = (
            self._prefix
            if self._prefix is not None
            else [[] for _ in range(config.n)]
        )

    def on_round(self, event: RoundEvent) -> None:
        for pid, fragment in enumerate(event.fragments):
            self._fragments[pid].append(fragment)

    def on_run_end(self, final_states, corrupted) -> None:
        self._final_states = final_states
        self._corrupted = corrupted

    def execution(self) -> Execution:
        """The recorded execution (call after the engine's run)."""
        assert self._config is not None, "engine never ran"
        behaviors = tuple(
            Behavior(
                tuple(self._fragments[pid]),
                final_state=self._final_states[pid],
            )
            for pid in range(self._config.n)
        )
        return Execution(
            n=self._config.n,
            t=self._config.t,
            faulty=self._corrupted,
            behaviors=behaviors,
        )


class IncrementalChecker(RoundObserver):
    """Round-by-round enforcement of the A.1.4–A.1.6 conditions.

    Covers the same guarantees as
    :func:`repro.sim.execution.check_execution` — fragment structure,
    send-validity, receive-validity, omission-validity, proposal
    stability, write-once decisions and the faulty budget — but raises at
    the *first offending round* instead of after the horizon.  Intended
    for live engine runs; post-hoc surgery products (swap/merge outputs)
    keep using ``check_execution``.
    """

    def __init__(self) -> None:
        self._t = 0
        self._proposals: list[Payload] = []
        self._decisions: list[Payload | None] = []

    def on_run_start(self, config, machines, adversary) -> None:
        self._t = config.t
        self._proposals = [machine.proposal for machine in machines]
        self._decisions = [None] * config.n

    def on_round(self, event: RoundEvent) -> None:
        by_receiver = {
            pid: fragment.all_incoming
            for pid, fragment in enumerate(event.fragments)
        }
        by_sender = {
            pid: fragment.sent
            for pid, fragment in enumerate(event.fragments)
        }
        for pid, fragment in enumerate(event.fragments):
            check_fragment(fragment)  # the ten A.1.4 conditions
            self._check_state(pid, fragment.state, event.round)
            if fragment.commits_fault and pid not in event.corrupted:
                raise ModelViolation(
                    f"omission-validity: p{pid} commits omission faults "
                    f"in round {event.round} but is not corrupted"
                )
            for message in fragment.sent:  # send-validity
                if message not in by_receiver[message.receiver]:
                    raise ModelViolation(
                        f"send-validity: {message} sent but neither "
                        "received nor receive-omitted"
                    )
            for message in fragment.all_incoming:  # receive-validity
                if message not in by_sender[message.sender]:
                    raise ModelViolation(
                        f"receive-validity: {message} received or "
                        "receive-omitted but never successfully sent"
                    )

    def on_run_end(self, final_states, corrupted) -> None:
        if len(corrupted) > self._t:
            raise ModelViolation(
                f"|F| = {len(corrupted)} exceeds t = {self._t}"
            )
        for pid, state in enumerate(final_states):
            self._check_state(pid, state, state.round)

    def _check_state(
        self, pid: ProcessId, state: StateSnapshot, round_: Round
    ) -> None:
        if state.process != pid:
            raise ModelViolation(
                f"behavior of p{pid} carries state of p{state.process}"
            )
        if state.proposal != self._proposals[pid]:
            raise ModelViolation(
                f"p{pid}: proposal changed {self._proposals[pid]!r} -> "
                f"{state.proposal!r} at round {round_}"
            )
        previous = self._decisions[pid]
        if previous is None:
            self._decisions[pid] = state.decision
        elif state.decision != previous:
            raise ModelViolation(
                f"p{pid}: decision changed {previous!r} -> "
                f"{state.decision!r} at round {round_}"
            )


class EarlyStopPolicy(RoundObserver):
    """Halts the engine once the watched processes have all decided.

    With ``scope="correct"`` (the default, the paper's termination
    condition) the policy watches processes outside the adversary's
    current corruption set; with ``scope="all"`` it waits for *every*
    process — the conservative mode the lower-bound driver uses so that
    faulty-group decisions (queried by the Lemma-2 majority check) are
    also final in the truncated record.

    Soundness: decisions are write-once and every protocol's declared
    horizon is a sound decision bound, so the truncated execution is a
    prefix of the full one carrying identical decisions.  Message counts
    may differ for protocols that keep talking after deciding — the §2
    complexity metric *does* charge those messages, so complexity
    measurements must run without early stop (or compare, as the
    equivalence tests do).
    """

    def __init__(self, scope: str = "correct") -> None:
        if scope not in ("correct", "all"):
            raise ValueError(f"unknown scope {scope!r}")
        self.scope = scope
        self.stopped_at: Round | None = None

    def on_round(self, event: RoundEvent) -> None:
        if self.stop_requested:
            return
        if self.scope == "all":
            undecided = any(
                decision is None for decision in event.decisions
            )
        else:
            undecided = any(
                decision is None
                for pid, decision in enumerate(event.decisions)
                if pid not in event.corrupted
            )
        if not undecided:
            self.stop_requested = True
            self.stopped_at = event.round


class MachineCheckpointer(RoundObserver):
    """Deep-copies the machine array at registered round boundaries.

    ``checkpoint(k)`` returns a *fresh* copy of the machines in their
    start-of-round-``k`` states, so a caller can resume simulation at
    round ``k`` under a different (static) adversary without re-running
    rounds ``1 .. k-1`` — the execution-reuse backbone of the Lemma-4
    critical-round scan.  Only meaningful for deterministic machines
    (the library-wide contract) whose state survives ``copy.deepcopy``;
    a machine that cannot be deep-copied disables the checkpointer
    rather than failing the run.

    Snapshots are *lazy*: only rounds a consumer registered — via the
    ``rounds`` constructor argument or :meth:`register` before the run
    reaches them — are captured.  An unregistered checkpointer captures
    nothing: historically it deep-copied the machine array at *every*
    round boundary whether or not anyone would resume, which dominated
    allocation on runs that never resumed.  The driver registers
    exactly the resume rounds its scan can reach; deltas are visible in
    ``object_counts()['machine_snapshots']``.
    """

    def __init__(self, rounds: Sequence[Round] | None = None) -> None:
        self._rounds: set[Round] = set() if rounds is None else set(rounds)
        self._snapshots: dict[Round, list[Process]] = {}
        self._machines: Sequence[Process] = ()
        self.enabled = True

    def register(self, rounds: Sequence[Round]) -> None:
        """Add rounds to snapshot (before the run passes them)."""
        self._rounds.update(rounds)

    def on_run_start(self, config, machines, adversary) -> None:
        self._machines = machines
        if 1 in self._rounds:
            self._snapshot(1)

    def on_round(self, event: RoundEvent) -> None:
        if self.enabled and event.round + 1 in self._rounds:
            self._snapshot(event.round + 1)

    def _snapshot(self, round_: Round) -> None:
        try:
            self._snapshots[round_] = copy.deepcopy(list(self._machines))
            SNAPSHOTS.machines += len(self._snapshots[round_])
        except Exception:  # deepcopy-hostile machines: degrade gracefully
            self.enabled = False
            self._snapshots.clear()

    def has_checkpoint(self, round_: Round) -> bool:
        """Whether a start-of-round-``round_`` snapshot exists."""
        return round_ in self._snapshots

    def checkpoint(self, round_: Round) -> list[Process]:
        """A fresh machine array in start-of-round-``round_`` states."""
        return copy.deepcopy(self._snapshots[round_])
