"""Deterministic process state machines (A.1.3).

The paper models each process as a deterministic state machine: the
transition function maps (state at the start of a round, messages received
in the round) to (state at the start of the next round, messages sent in the
next round).  :class:`Process` is the executable form of that machine:

* :meth:`Process.outgoing` is called once per round and returns the
  messages the process *attempts* to send (the adversary decides which are
  send-omitted, but only for corrupted processes);
* :meth:`Process.deliver` hands the process the payloads it receives (the
  adversary decides receive-omissions for corrupted processes);
* :meth:`Process.decide` records the (write-once) decision.

Determinism contract: implementations must derive everything from
``(pid, n, t, proposal)`` and the delivered messages — no randomness, no
wall-clock, no dict-ordering dependence (iterate in sorted order).  The
:func:`drive_replay` checker re-runs a machine against a recorded behavior
and verifies the record is exactly what the machine produces, enforcing the
contract mechanically (behavior condition 7 of A.1.5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping

from repro.errors import ModelViolation, ProtocolViolation
from repro.sim.state import Behavior, StateSnapshot
from repro.types import Payload, ProcessId, Round, validate_process_id, validate_system_size


class Process(ABC):
    """A deterministic per-process state machine.

    Subclasses implement :meth:`outgoing` and :meth:`deliver`; the
    simulator drives the round loop and records fragments.
    """

    def __init__(
        self, pid: ProcessId, n: int, t: int, proposal: Payload
    ) -> None:
        validate_system_size(n, t)
        validate_process_id(pid, n)
        self.pid = pid
        self.n = n
        self.t = t
        self.proposal = proposal
        self._decision: Payload | None = None

    @abstractmethod
    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        """The messages this process attempts to send in ``round_``.

        Returns a mapping ``receiver -> payload``; at most one message per
        receiver, never to ``self.pid`` (the model's one-message-per-pair
        and no-self-message rules).  Called exactly once per round, before
        :meth:`deliver` for the same round.
        """

    @abstractmethod
    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        """Handle the messages received in ``round_``.

        ``received`` maps each sender to the payload that arrived from it
        this round (senders whose messages were omitted simply do not
        appear — a process cannot observe its own receive-omissions).
        """

    @property
    def decision(self) -> Payload | None:
        """The decided value, or ``None`` while undecided."""
        return self._decision

    def decide(self, value: Payload) -> None:
        """Record the decision; write-once (A.1.2/A.1.5 condition 6).

        Deciding the same value twice is a harmless no-op; deciding a
        different value is a protocol bug and raises.
        """
        if value is None:
            raise ProtocolViolation(
                f"p{self.pid} tried to decide None (reserved for undecided)"
            )
        if self._decision is not None and self._decision != value:
            raise ProtocolViolation(
                f"p{self.pid} changed decision "
                f"{self._decision!r} -> {value!r}"
            )
        self._decision = value

    def snapshot(self, round_: Round) -> StateSnapshot:
        """The observable state at the start of ``round_`` (A.1.2)."""
        return StateSnapshot(
            process=self.pid,
            round=round_,
            proposal=self.proposal,
            decision=self._decision,
        )

    def validate_outgoing(
        self, round_: Round, mapping: Mapping[ProcessId, Payload]
    ) -> dict[ProcessId, Payload]:
        """Validate an outgoing mapping against the model's rules."""
        for receiver in mapping:
            validate_process_id(receiver, self.n)
            if receiver == self.pid:
                raise ProtocolViolation(
                    f"p{self.pid} attempted a self-message in round {round_}"
                )
        return dict(sorted(mapping.items()))


ProcessFactory = Callable[[ProcessId, Payload], Process]
"""Builds a fresh machine for ``(pid, proposal)``; ``n``/``t`` are baked in.

Protocol modules provide factory constructors
(e.g. ``DolevStrongBroadcast.factory(n, t, sender=0)``) returning one of
these; the simulator, the reductions and the lower-bound driver all operate
on factories so they can re-instantiate and replay processes at will.
"""


class ReplayProcess(Process):
    """A machine that replays the outgoing messages of a recorded behavior.

    Ignores everything it receives and re-emits, round by round, exactly
    the outgoing sets (``sent ∪ send_omitted``) recorded in ``behavior``.
    Beyond the recorded horizon it sends nothing.

    Used to embed a process's recorded behavior inside a differently-faulty
    execution (the essence of the indistinguishability constructions), and
    as a simple scripted Byzantine strategy.
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        behavior: Behavior,
    ) -> None:
        if behavior.process != pid:
            raise ValueError(
                f"behavior of p{behavior.process} given to ReplayProcess "
                f"for p{pid}"
            )
        super().__init__(pid, n, t, behavior.proposal)
        self._behavior = behavior

    def outgoing(self, round_: Round) -> dict[ProcessId, Payload]:
        if round_ > self._behavior.rounds:
            return {}
        fragment = self._behavior.fragment(round_)
        return {
            message.receiver: message.payload
            for message in sorted(
                fragment.all_outgoing, key=lambda m: m.receiver
            )
        }

    def deliver(
        self, round_: Round, received: Mapping[ProcessId, Payload]
    ) -> None:
        if round_ <= self._behavior.rounds:
            state_after = (
                self._behavior.final_state
                if round_ == self._behavior.rounds
                else self._behavior.fragment(round_ + 1).state
            )
            if state_after.decision is not None:
                self.decide(state_after.decision)


def drive_replay(machine: Process, behavior: Behavior) -> None:
    """Re-run ``machine`` against ``behavior``'s received sets and compare.

    Checks, for every round ``j``:

    * the machine's decision at the start of ``j`` equals the recorded
      state's decision;
    * the machine's outgoing mapping equals the recorded
      ``sent ∪ send_omitted`` set (condition 7 of A.1.5 — the algorithm
      determines the *attempted* sends; the adversary only splits them).

    Finally compares the machine's decision after the last round with the
    recorded ``final_state``.

    Raises:
        ModelViolation: on the first mismatch, meaning either the record
            was not produced by this algorithm, or the algorithm violates
            the determinism contract.
    """
    if machine.pid != behavior.process:
        raise ModelViolation(
            f"machine p{machine.pid} vs behavior of p{behavior.process}"
        )
    if machine.proposal != behavior.proposal:
        raise ModelViolation(
            f"p{machine.pid}: machine proposal {machine.proposal!r} vs "
            f"recorded {behavior.proposal!r}"
        )
    for round_ in range(1, behavior.rounds + 1):
        fragment = behavior.fragment(round_)
        if machine.decision != fragment.state.decision:
            raise ModelViolation(
                f"p{machine.pid} r{round_}: decision "
                f"{machine.decision!r} vs recorded "
                f"{fragment.state.decision!r}"
            )
        produced = machine.validate_outgoing(
            round_, machine.outgoing(round_)
        )
        recorded = {
            message.receiver: message.payload
            for message in fragment.all_outgoing
        }
        if produced != recorded:
            raise ModelViolation(
                f"p{machine.pid} r{round_}: outgoing mismatch; "
                f"machine {produced!r} vs recorded {recorded!r}"
            )
        received = {
            message.sender: message.payload
            for message in fragment.received
        }
        machine.deliver(round_, received)
    if machine.decision != behavior.final_state.decision:
        raise ModelViolation(
            f"p{machine.pid}: final decision {machine.decision!r} vs "
            f"recorded {behavior.final_state.decision!r}"
        )
