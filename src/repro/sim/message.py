"""Messages of the synchronous computational model (Appendix A.1.1).

Each message encodes its sender, its receiver and the round in which it is
sent.  Because the model allows at most one message per ordered pair of
processes per round, the triple ``(sender, receiver, round)`` uniquely
identifies a message *slot* within an execution; the payload carries the
protocol-level content.

Messages are immutable and compare by value, which is what the paper's
indistinguishability arguments need: "the same message" in two executions
means equal sender, receiver, round and payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.types import Payload, ProcessId, Round

_PAIR_CACHE: dict[
    tuple[ProcessId, ProcessId], tuple[ProcessId, ProcessId]
] = {}


class _MaterializationCounts:
    """Process-wide tallies of sim objects built since interpreter start.

    Monotone, cheap (one integer increment at each construction site) and
    never reset: consumers such as the benchmark observatory take
    *deltas* around a measured region (see
    :func:`repro.sim.engine.object_counts`).  The counts are a memory
    proxy the wall clock cannot see — a kernel that got faster by
    materializing twice as many messages shows up here.

    ``masks`` and ``popcounts`` belong to the bitmask round kernel
    (:mod:`repro.sim.kernel`): per-round send/receive bitmasks built and
    popcount accumulations performed, the kernel-representation analogue
    of ``messages``.
    """

    __slots__ = ("messages", "channels", "masks", "popcounts")

    def __init__(self) -> None:
        self.messages = 0
        self.channels = 0
        self.masks = 0
        self.popcounts = 0


MATERIALIZED = _MaterializationCounts()
"""The interpreter-wide message/channel construction tallies."""


def intern_pair(
    sender: ProcessId, receiver: ProcessId
) -> tuple[ProcessId, ProcessId]:
    """The canonical ``(sender, receiver)`` tuple for a channel.

    Every message in an execution's flat send-sets travels one of at most
    ``n·(n-1)`` channels, but a naive tuple per message allocates (and
    validates) the pair over and over.  Interning returns one shared
    tuple object per channel and performs the self-message check once,
    when the channel is first seen.  The cache is bounded by the square
    of the largest process count ever simulated in this interpreter.

    Raises:
        ValueError: if ``sender == receiver`` (A.1: no self-messages).
    """
    pair = (sender, receiver)
    cached = _PAIR_CACHE.get(pair)
    if cached is not None:
        return cached
    if sender == receiver:
        raise ValueError("no process sends messages to itself (A.1)")
    _PAIR_CACHE[pair] = pair
    MATERIALIZED.channels += 1
    return pair


@dataclass(frozen=True, slots=True)
class Message:
    """A single message of the model.

    The value hash is precomputed at construction (messages spend their
    lives inside frozensets — per-round send-sets, fragment message sets,
    the engine's flat ``all_sent`` view — so each message is hashed many
    times but created once).  The cached hash never crosses a process
    boundary: string hashing is randomized per interpreter, so pickling
    reconstructs the message through ``__init__`` (see ``__reduce__``).

    Attributes:
        sender: the process that sends the message (``m.sender``).
        receiver: the destination process (``m.receiver``).
        round: the 1-based round in which the message travels (``m.round``).
        payload: protocol-defined, hashable content.
    """

    sender: ProcessId
    receiver: ProcessId
    round: Round
    payload: Payload = None
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        pair = intern_pair(self.sender, self.receiver)
        if self.round < 1:
            raise ValueError(f"rounds start at 1, got {self.round}")
        object.__setattr__(
            self, "_hash", hash((pair, self.round, self.payload))
        )
        MATERIALIZED.messages += 1

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild via __init__ so the hash is recomputed under the
        # destination interpreter's hash seed (and the pair re-interned
        # in its cache).
        return (Message, (self.sender, self.receiver, self.round,
                          self.payload))

    @property
    def slot(self) -> tuple[ProcessId, ProcessId, Round]:
        """The ``(sender, receiver, round)`` triple identifying the slot."""
        return (self.sender, self.receiver, self.round)

    @property
    def pair(self) -> tuple[ProcessId, ProcessId]:
        """The interned ``(sender, receiver)`` channel tuple."""
        return intern_pair(self.sender, self.receiver)

    def with_payload(self, payload: Payload) -> "Message":
        """Return a copy of this message carrying ``payload`` instead."""
        return Message(self.sender, self.receiver, self.round, payload)


def check_one_per_receiver(messages: frozenset[Message] | set[Message]) -> None:
    """Raise if two messages in ``messages`` target the same receiver.

    Used by the fragment checker for the sent side (condition 9 of A.1.4).
    """
    seen: set[ProcessId] = set()
    for message in messages:
        if message.receiver in seen:
            raise ValueError(
                f"two messages to receiver {message.receiver} in one round"
            )
        seen.add(message.receiver)


def check_one_per_sender(messages: frozenset[Message] | set[Message]) -> None:
    """Raise if two messages in ``messages`` come from the same sender.

    Used by the fragment checker for the received side (condition 10 of
    A.1.4).
    """
    seen: set[ProcessId] = set()
    for message in messages:
        if message.sender in seen:
            raise ValueError(
                f"two messages from sender {message.sender} in one round"
            )
        seen.add(message.sender)


@dataclass(frozen=True, slots=True)
class Outbox:
    """Convenience builder for a process's per-round outgoing messages.

    Protocol implementations return a mapping ``receiver -> payload``; the
    simulator converts it to :class:`Message` objects.  ``Outbox`` is a thin
    named wrapper that validates the mapping eagerly so protocol bugs fail
    close to their source.
    """

    sender: ProcessId
    round: Round
    by_receiver: tuple[tuple[ProcessId, Payload], ...] = field(default=())

    @classmethod
    def from_mapping(
        cls,
        sender: ProcessId,
        round_: Round,
        mapping: dict[ProcessId, Payload],
    ) -> "Outbox":
        """Build an outbox from a ``receiver -> payload`` mapping."""
        items = tuple(sorted(mapping.items()))
        for receiver, _ in items:
            if receiver == sender:
                raise ValueError("no process sends messages to itself (A.1)")
        return cls(sender=sender, round=round_, by_receiver=items)

    def to_messages(self) -> frozenset[Message]:
        """Materialize the outbox as a set of :class:`Message` objects."""
        return frozenset(
            Message(self.sender, receiver, self.round, payload)
            for receiver, payload in self.by_receiver
        )


def broadcast_payload(
    sender: ProcessId, n: int, payload: Payload
) -> dict[ProcessId, Payload]:
    """Mapping sending ``payload`` to every process except ``sender``.

    A helper for the common all-but-self broadcast pattern in protocols.
    """
    return {pid: payload for pid in range(n) if pid != sender}


def messages_by_slot(
    messages: frozenset[Message] | set[Message],
) -> dict[tuple[ProcessId, ProcessId, Round], Message]:
    """Index a message set by its ``(sender, receiver, round)`` slot."""
    index: dict[tuple[ProcessId, ProcessId, Round], Message] = {}
    for message in messages:
        slot = message.slot
        if slot in index:
            raise ValueError(f"duplicate slot {slot}")
        index[slot] = message
    return index


def freeze(messages: set[Message] | frozenset[Message] | None) -> frozenset[Message]:
    """Return ``messages`` as a frozenset, treating ``None`` as empty."""
    if messages is None:
        return frozenset()
    return frozenset(messages)


def payload_size(payload: Payload) -> int:
    """A crude, deterministic size estimate of a payload in abstract units.

    Used only by the optional bit-complexity counters in
    :mod:`repro.sim.metrics`; the paper's bound is on *messages*, which we
    count exactly, while sizes are informational.
    """
    if payload is None:
        return 1
    if isinstance(payload, (bool, int)):
        return 1
    if isinstance(payload, str):
        return max(1, len(payload))
    if isinstance(payload, (bytes, bytearray)):
        return max(1, len(payload))
    if isinstance(payload, tuple):
        return 1 + sum(payload_size(element) for element in payload)
    if isinstance(payload, frozenset):
        return 1 + sum(payload_size(element) for element in payload)
    return 1
