"""States, fragments and behaviors of the execution model (Appendix A.1).

The paper formalizes what an omniscient observer records about a process:

* a **state** (A.1.2) holds the process id, the round it is starting, its
  proposal and its decision (``None`` until it decides);
* a **k-round fragment** (A.1.4) is the tuple
  ``(s, M_S, M_SO, M_R, M_RO)`` — the state at the start of round ``k``
  together with the messages the process (successfully) sent, send-omitted,
  received, and receive-omitted during round ``k``, subject to ten
  structural conditions;
* a **behavior** (A.1.5) is the sequence of a process's fragments over the
  rounds of an execution, subject to seven conditions tying consecutive
  fragments together (stable proposal, write-once decision, transitions
  produced by the algorithm's transition function).

These classes are *records*, not live state machines: the simulator in
:mod:`repro.sim.simulator` produces them, and the proof constructions in
:mod:`repro.omission` (``swap_omission``, ``merge``) rewrite them.  Every
structural condition from the paper is enforced mechanically, either eagerly
(cheap local conditions) or via :func:`check_fragment` /
:func:`check_behavior`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.errors import ModelViolation
from repro.sim.message import Message
from repro.types import Payload, ProcessId, Round


class _BehaviorCounts:
    """Process-wide tally of :class:`Behavior` records built.

    The behavior-side companion of
    :data:`repro.sim.message.MATERIALIZED`: consumers read deltas via
    :func:`repro.sim.engine.object_counts`, never reset it.
    """

    __slots__ = ("behaviors",)

    def __init__(self) -> None:
        self.behaviors = 0


BUILT = _BehaviorCounts()
"""The interpreter-wide behavior construction tally."""


@dataclass(frozen=True, slots=True)
class StateSnapshot:
    """The observable state of a process at the start of a round (A.1.2).

    Attributes:
        process: the process this state belongs to (``s.process``).
        round: the round the process is about to start (``s.round``).
        proposal: the process's proposal (``s.proposal``); fixed for the
            whole execution (behavior condition 5).
        decision: the decided value, or ``None`` (the paper's ``⊥``) if the
            process has not decided by the start of this round.
    """

    process: ProcessId
    round: Round
    proposal: Payload
    decision: Payload | None = None

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError(f"rounds start at 1, got {self.round}")

    @property
    def decided(self) -> bool:
        """Whether the process has decided by the start of this round."""
        return self.decision is not None

    def advanced(self, decision: Payload | None) -> "StateSnapshot":
        """The state at the start of the next round.

        Implements the bookkeeping half of the transition function
        (A.1.3): same process and proposal, round incremented, and the
        decision is write-once — once set it can never change.

        Args:
            decision: the decision reported by the algorithm for the next
                round (ignored if this state already carries a decision).

        Raises:
            ModelViolation: if ``decision`` contradicts an earlier decision.
        """
        if self.decision is not None:
            if decision is not None and decision != self.decision:
                raise ModelViolation(
                    f"process {self.process} changed decision "
                    f"{self.decision!r} -> {decision!r}"
                )
            decision = self.decision
        return StateSnapshot(
            process=self.process,
            round=self.round + 1,
            proposal=self.proposal,
            decision=decision,
        )


def initial_state(process: ProcessId, proposal: Payload) -> StateSnapshot:
    """The initial state of ``process`` with ``proposal`` (A.1.2).

    The paper writes ``0_i`` / ``1_i`` for the two binary initial states;
    this generalizes to arbitrary proposal domains.
    """
    return StateSnapshot(process=process, round=1, proposal=proposal)


@dataclass(frozen=True, slots=True)
class Fragment:
    """A k-round fragment of a process (A.1.4).

    ``state`` is the process's state at the start of round ``k``; the four
    message sets are the messages it sent, send-omitted, received and
    receive-omitted during round ``k``.  The ten conditions of A.1.4 are
    checked by :func:`check_fragment`.
    """

    state: StateSnapshot
    sent: frozenset[Message] = field(default_factory=frozenset)
    send_omitted: frozenset[Message] = field(default_factory=frozenset)
    received: frozenset[Message] = field(default_factory=frozenset)
    receive_omitted: frozenset[Message] = field(default_factory=frozenset)

    @property
    def process(self) -> ProcessId:
        """The process this fragment describes."""
        return self.state.process

    @property
    def round(self) -> Round:
        """The round this fragment describes."""
        return self.state.round

    @property
    def all_outgoing(self) -> frozenset[Message]:
        """Sent plus send-omitted messages — the algorithm's full output.

        The transition function of A.1.3 determines ``sent ∪ send_omitted``;
        the adversary chooses the split.
        """
        return self.sent | self.send_omitted

    @property
    def all_incoming(self) -> frozenset[Message]:
        """Received plus receive-omitted messages addressed to the process."""
        return self.received | self.receive_omitted

    @property
    def commits_fault(self) -> bool:
        """Whether this fragment contains an omission fault."""
        return bool(self.send_omitted) or bool(self.receive_omitted)

    def replacing(
        self,
        *,
        sent: frozenset[Message] | None = None,
        send_omitted: frozenset[Message] | None = None,
        received: frozenset[Message] | None = None,
        receive_omitted: frozenset[Message] | None = None,
    ) -> "Fragment":
        """A copy of this fragment with some message sets replaced.

        Mirrors the fragment-surgery steps of Algorithm 4 (swap_omission)
        and the lemmas 11/12 constructions; the result should be re-checked
        with :func:`check_fragment` by callers that alter invariants.
        """
        return replace(
            self,
            sent=self.sent if sent is None else sent,
            send_omitted=(
                self.send_omitted if send_omitted is None else send_omitted
            ),
            received=self.received if received is None else received,
            receive_omitted=(
                self.receive_omitted
                if receive_omitted is None
                else receive_omitted
            ),
        )


def check_fragment(fragment: Fragment) -> None:
    """Check the ten conditions of A.1.4 for ``fragment``.

    Raises:
        ModelViolation: naming the first violated condition.
    """
    pid = fragment.process
    k = fragment.round
    outgoing = fragment.sent | fragment.send_omitted
    incoming = fragment.received | fragment.receive_omitted
    every = outgoing | incoming

    # Conditions 1 and 2 hold by construction (state carries pid and k).
    for message in every:  # condition 3
        if message.round != k:
            raise ModelViolation(
                f"fragment round {k} contains message of round "
                f"{message.round}: {message}"
            )
    if fragment.sent & fragment.send_omitted:  # condition 4
        raise ModelViolation(f"p{pid} r{k}: sent and send-omitted overlap")
    if fragment.received & fragment.receive_omitted:  # condition 5
        raise ModelViolation(
            f"p{pid} r{k}: received and receive-omitted overlap"
        )
    for message in outgoing:  # condition 6
        if message.sender != pid:
            raise ModelViolation(
                f"p{pid} r{k}: outgoing message with sender "
                f"{message.sender}: {message}"
            )
    for message in incoming:  # condition 7
        if message.receiver != pid:
            raise ModelViolation(
                f"p{pid} r{k}: incoming message with receiver "
                f"{message.receiver}: {message}"
            )
    for message in every:  # condition 8 (self-messages are also rejected
        # eagerly by Message.__post_init__; re-checked for completeness)
        if message.sender == message.receiver:
            raise ModelViolation(f"p{pid} r{k}: self-message {message}")
    receivers = [message.receiver for message in outgoing]  # condition 9
    if len(receivers) != len(set(receivers)):
        raise ModelViolation(
            f"p{pid} r{k}: two outgoing messages to one receiver"
        )
    senders = [message.sender for message in incoming]  # condition 10
    if len(senders) != len(set(senders)):
        raise ModelViolation(
            f"p{pid} r{k}: two incoming messages from one sender"
        )


@dataclass(frozen=True, slots=True)
class Behavior:
    """A k-round behavior of a process (A.1.5): its fragments in order.

    The accessor methods mirror the *Functions* table of Appendix A
    (``state``, ``sent``, ``send_omitted``, ``received``,
    ``receive_omitted`` and their ``all_*`` aggregates).  Rounds are 1-based
    throughout, matching the paper.

    Finite-horizon note: the paper works with infinite executions, in which
    any decision eventually shows up in a later state.  A finite record
    additionally carries ``final_state`` — the state at the start of round
    ``k+1`` produced by the last transition — so a decision taken *during*
    the final recorded round is still observable.
    """

    fragments: tuple[Fragment, ...]
    final_state: StateSnapshot

    def __post_init__(self) -> None:
        if not self.fragments:
            raise ValueError("a behavior has at least one fragment")
        BUILT.behaviors += 1

    @property
    def process(self) -> ProcessId:
        """The process exhibiting this behavior."""
        return self.fragments[0].process

    @property
    def rounds(self) -> int:
        """The number of rounds this behavior spans (the paper's ``k``)."""
        return len(self.fragments)

    @property
    def proposal(self) -> Payload:
        """The process's proposal (constant across rounds, condition 5)."""
        return self.fragments[0].state.proposal

    @property
    def decision(self) -> Payload | None:
        """The final decision, or ``None`` if the process never decided.

        A state carries the decision *at the start* of its round, so the
        decision is read off ``final_state`` (the state after the last
        recorded round), which reflects decisions taken in any round.
        """
        return self.final_state.decision

    @property
    def decision_round(self) -> Round | None:
        """The round *during* which the process decided, or ``None``.

        A decision first visible in the state at the start of round ``j+1``
        was taken during round ``j``.
        """
        for fragment in self.fragments:
            if fragment.state.decision is not None:
                return fragment.state.round - 1
        if self.final_state.decision is not None:
            return self.final_state.round - 1
        return None

    def fragment(self, round_: Round) -> Fragment:
        """The fragment of round ``round_`` (1-based)."""
        if not 1 <= round_ <= len(self.fragments):
            raise IndexError(
                f"round {round_} outside behavior of {len(self.fragments)}"
            )
        return self.fragments[round_ - 1]

    def state(self, round_: Round) -> StateSnapshot:
        """``state(B, j)``: the state at the start of round ``round_``."""
        return self.fragment(round_).state

    def sent(self, round_: Round) -> frozenset[Message]:
        """``sent(B, j)``: messages successfully sent in round ``round_``."""
        return self.fragment(round_).sent

    def send_omitted(self, round_: Round) -> frozenset[Message]:
        """``send_omitted(B, j)``: messages send-omitted in ``round_``."""
        return self.fragment(round_).send_omitted

    def received(self, round_: Round) -> frozenset[Message]:
        """``received(B, j)``: messages received in round ``round_``."""
        return self.fragment(round_).received

    def receive_omitted(self, round_: Round) -> frozenset[Message]:
        """``receive_omitted(B, j)``: messages receive-omitted in ``round_``."""
        return self.fragment(round_).receive_omitted

    def all_sent(self) -> frozenset[Message]:
        """``all_sent(B)``: every successfully sent message."""
        return frozenset().union(*(f.sent for f in self.fragments))

    def all_send_omitted(self) -> frozenset[Message]:
        """``all_send_omitted(B)``: every send-omitted message."""
        return frozenset().union(*(f.send_omitted for f in self.fragments))

    def all_received(self) -> frozenset[Message]:
        """Every received message (not in the paper's table; convenient)."""
        return frozenset().union(*(f.received for f in self.fragments))

    def all_receive_omitted(self) -> frozenset[Message]:
        """``all_receive_omitted(B)``: every receive-omitted message."""
        return frozenset().union(
            *(f.receive_omitted for f in self.fragments)
        )

    @property
    def commits_fault(self) -> bool:
        """Whether the process commits any omission fault in this behavior."""
        return any(fragment.commits_fault for fragment in self.fragments)

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self.fragments)

    def prefix(self, rounds: int) -> "Behavior":
        """The behavior truncated to its first ``rounds`` fragments."""
        if not 1 <= rounds <= len(self.fragments):
            raise IndexError(
                f"cannot take {rounds}-round prefix of "
                f"{len(self.fragments)}-round behavior"
            )
        if rounds == len(self.fragments):
            return self
        return Behavior(
            self.fragments[:rounds],
            final_state=self.fragments[rounds].state,
        )


def check_behavior(behavior: Behavior) -> None:
    """Check the structural behavior conditions of A.1.5 (1-6).

    Condition 7 (fragments chained by the algorithm's transition function)
    involves the algorithm itself and is checked by
    :func:`repro.sim.execution.check_transitions` given a process factory.

    Raises:
        ModelViolation: naming the first violated condition.
    """
    pid = behavior.process
    for fragment in behavior.fragments:
        check_fragment(fragment)  # condition 1
        if fragment.process != pid:
            raise ModelViolation(
                "behavior mixes fragments of processes "
                f"{pid} and {fragment.process}"
            )
    for index, fragment in enumerate(behavior.fragments):
        if fragment.round != index + 1:
            raise ModelViolation(
                f"p{pid}: fragment at position {index} has round "
                f"{fragment.round}, expected {index + 1}"
            )
    first = behavior.fragments[0].state
    if first.decision is not None:  # processes cannot start decided
        raise ModelViolation(f"p{pid} starts round 1 already decided")
    proposal = first.proposal  # condition 5
    decision: Payload | None = None  # condition 6 (write-once decision)
    states = [fragment.state for fragment in behavior.fragments]
    states.append(behavior.final_state)
    for state in states:
        if state.process != pid:
            raise ModelViolation(
                f"behavior of p{pid} carries state of p{state.process}"
            )
        if state.proposal != proposal:
            raise ModelViolation(
                f"p{pid}: proposal changed {proposal!r} -> "
                f"{state.proposal!r} at round {state.round}"
            )
        if decision is None:
            decision = state.decision
        elif state.decision != decision:
            raise ModelViolation(
                f"p{pid}: decision changed {decision!r} -> "
                f"{state.decision!r} at round {state.round}"
            )
    if behavior.final_state.round != behavior.rounds + 1:
        raise ModelViolation(
            f"p{pid}: final state has round {behavior.final_state.round}, "
            f"expected {behavior.rounds + 1}"
        )


def behaviors_indistinguishable(left: Behavior, right: Behavior) -> bool:
    """Whether two behaviors are indistinguishable *to the process* (§3).

    Two executions are indistinguishable to a process iff it has the same
    proposal and receives identical messages in every round.  Note that
    omitted messages do **not** count: a process is unaware of its own
    receive-omissions (§3, "corrupted processes are unaware that they are
    corrupted").

    Behaviors of different lengths are comparable only on their common
    prefix; we require equal lengths, which is what the constructions use.
    """
    if left.process != right.process:
        return False
    if left.proposal != right.proposal:
        return False
    if left.rounds != right.rounds:
        return False
    return all(
        left.received(j) == right.received(j)
        for j in range(1, left.rounds + 1)
    )


def behavior_from_fragments(
    fragments: Iterable[Fragment], final_state: StateSnapshot
) -> Behavior:
    """Build and structurally check a behavior from ``fragments``."""
    behavior = Behavior(tuple(fragments), final_state=final_state)
    check_behavior(behavior)
    return behavior


def decisions_of(behaviors: Sequence[Behavior]) -> dict[ProcessId, Payload | None]:
    """Map each behavior's process to its (possibly absent) decision."""
    return {behavior.process: behavior.decision for behavior in behaviors}
