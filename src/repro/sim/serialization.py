"""JSON serialization for executions and violation witnesses.

A violation witness is only as useful as its portability: a third party
should be able to load the counterexample and re-run the checks without
re-running the attack.  This module round-trips the full Appendix-A
record — executions, behaviors, fragments, messages — through plain JSON.

Payloads are arbitrary hashables in memory; the codec covers the closed
set of types the library's protocols actually put on the wire:

* ``None``, ``bool``, ``int``, ``str``, ``bytes``;
* ``tuple`` and ``frozenset`` of codable values;
* :class:`~repro.crypto.signatures.Signature` and
  :class:`~repro.crypto.chains.SignedChain`;
* :class:`~repro.protocols.external_validity.Transaction`.

Unknown types raise :class:`~repro.errors.ReproError` at encode time —
fail loudly rather than write an artifact that cannot be reloaded.

Encoding is *canonical*: the same value always yields the same JSON,
regardless of set iteration order (which varies across interpreters with
hash randomization).  Unordered collections are sorted by
:func:`canonical_json` of their encoded elements, so two equal payloads
— however they were built — encode identically:

>>> left = encode_payload(frozenset({(1, 2), (0, 9)}))
>>> right = encode_payload(frozenset({(0, 9), (1, 2)}))
>>> left == right
True
>>> value = (1, frozenset({(2, 3), (1, 4), None}), b"\\x00")
>>> decode_payload(encode_payload(value)) == value
True
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.sim.execution import Execution
from repro.sim.message import Message
from repro.sim.state import Behavior, Fragment, StateSnapshot

FORMAT_VERSION = 1


def canonical_json(data: Any) -> str:
    """The canonical JSON rendering of an already-encoded record.

    Used as the sort key for unordered collections (frozensets, message
    sets).  ``sort_keys=True`` makes the key independent of dict insertion
    order, so the ordering depends only on the *values* of the encoded
    elements — never on set iteration order, which hash randomization
    scrambles across interpreters.  Before this canonicalization, a
    ``tuple`` nested inside a ``frozenset`` could legally serialize in
    different element orders on different interpreters (the old sort key
    preserved insertion order of record keys), breaking byte-identity of
    artifacts across machines.

    >>> canonical_json({"k": "lit", "v": 1})
    '{"k":"lit","v":1}'
    >>> canonical_json({"v": 1, "k": "lit"})
    '{"k":"lit","v":1}'
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def encode_payload(value: Any) -> Any:
    """Encode one payload value into JSON-safe structures."""
    from repro.crypto.chains import SignedChain
    from repro.crypto.signatures import Signature
    from repro.protocols.external_validity import Transaction

    if value is None or isinstance(value, (bool, int, str)):
        return {"k": "lit", "v": value}
    if isinstance(value, bytes):
        return {"k": "bytes", "v": value.hex()}
    if isinstance(value, Signature):
        return {
            "k": "sig",
            "signer": value.signer,
            "tag": value.tag.hex(),
        }
    if isinstance(value, SignedChain):
        return {
            "k": "chain",
            "instance": encode_payload(value.instance),
            "value": encode_payload(value.value),
            "signatures": [
                encode_payload(signature)
                for signature in value.signatures
            ],
        }
    if isinstance(value, Transaction):
        return {
            "k": "tx",
            "client": value.client,
            "body": encode_payload(value.body),
            "signature": encode_payload(value.signature),
        }
    if isinstance(value, tuple):
        return {
            "k": "tuple",
            "v": [encode_payload(element) for element in value],
        }
    if isinstance(value, frozenset):
        encoded = [encode_payload(element) for element in value]
        encoded.sort(key=canonical_json)  # canonical order, see above
        return {"k": "fset", "v": encoded}
    raise ReproError(
        f"cannot serialize payload of type {type(value).__name__}"
    )


def decode_payload(data: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    from repro.crypto.chains import SignedChain
    from repro.crypto.signatures import Signature
    from repro.protocols.external_validity import Transaction

    if not isinstance(data, dict) or "k" not in data:
        raise ReproError(f"malformed payload record: {data!r}")
    kind = data["k"]
    if kind == "lit":
        return data["v"]
    if kind == "bytes":
        return bytes.fromhex(data["v"])
    if kind == "sig":
        return Signature(
            signer=data["signer"], tag=bytes.fromhex(data["tag"])
        )
    if kind == "chain":
        return SignedChain(
            instance=decode_payload(data["instance"]),
            value=decode_payload(data["value"]),
            signatures=tuple(
                decode_payload(signature)
                for signature in data["signatures"]
            ),
        )
    if kind == "tx":
        return Transaction(
            client=data["client"],
            body=decode_payload(data["body"]),
            signature=decode_payload(data["signature"]),
        )
    if kind == "tuple":
        return tuple(
            decode_payload(element) for element in data["v"]
        )
    if kind == "fset":
        return frozenset(
            decode_payload(element) for element in data["v"]
        )
    raise ReproError(f"unknown payload kind {kind!r}")


def _encode_message(message: Message) -> dict:
    return {
        "sender": message.sender,
        "receiver": message.receiver,
        "round": message.round,
        "payload": encode_payload(message.payload),
    }


def _decode_message(data: dict) -> Message:
    return Message(
        sender=data["sender"],
        receiver=data["receiver"],
        round=data["round"],
        payload=decode_payload(data["payload"]),
    )


def _encode_messages(messages: frozenset[Message]) -> list:
    encoded = [_encode_message(message) for message in messages]
    encoded.sort(key=canonical_json)
    return encoded


def _decode_messages(data: list) -> frozenset[Message]:
    return frozenset(_decode_message(entry) for entry in data)


def _encode_state(state: StateSnapshot) -> dict:
    return {
        "process": state.process,
        "round": state.round,
        "proposal": encode_payload(state.proposal),
        "decision": (
            None
            if state.decision is None
            else encode_payload(state.decision)
        ),
    }


def _decode_state(data: dict) -> StateSnapshot:
    return StateSnapshot(
        process=data["process"],
        round=data["round"],
        proposal=decode_payload(data["proposal"]),
        decision=(
            None
            if data["decision"] is None
            else decode_payload(data["decision"])
        ),
    )


def _encode_fragment(fragment: Fragment) -> dict:
    return {
        "state": _encode_state(fragment.state),
        "sent": _encode_messages(fragment.sent),
        "send_omitted": _encode_messages(fragment.send_omitted),
        "received": _encode_messages(fragment.received),
        "receive_omitted": _encode_messages(fragment.receive_omitted),
    }


def _decode_fragment(data: dict) -> Fragment:
    return Fragment(
        state=_decode_state(data["state"]),
        sent=_decode_messages(data["sent"]),
        send_omitted=_decode_messages(data["send_omitted"]),
        received=_decode_messages(data["received"]),
        receive_omitted=_decode_messages(data["receive_omitted"]),
    )


def _encode_behavior(behavior: Behavior) -> dict:
    return {
        "fragments": [
            _encode_fragment(fragment)
            for fragment in behavior.fragments
        ],
        "final_state": _encode_state(behavior.final_state),
    }


def _decode_behavior(data: dict) -> Behavior:
    return Behavior(
        tuple(
            _decode_fragment(fragment)
            for fragment in data["fragments"]
        ),
        final_state=_decode_state(data["final_state"]),
    )


def execution_to_dict(execution: Execution) -> dict:
    """Encode an execution as a JSON-safe dictionary."""
    return {
        "format": FORMAT_VERSION,
        "n": execution.n,
        "t": execution.t,
        "faulty": sorted(execution.faulty),
        "behaviors": [
            _encode_behavior(behavior)
            for behavior in execution.behaviors
        ],
    }


def execution_from_dict(data: dict) -> Execution:
    """Decode an execution; structural checks run in the constructors."""
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported execution format {data.get('format')!r}"
        )
    return Execution(
        n=data["n"],
        t=data["t"],
        faulty=frozenset(data["faulty"]),
        behaviors=tuple(
            _decode_behavior(behavior)
            for behavior in data["behaviors"]
        ),
    )


def dump_execution(execution: Execution) -> str:
    """Serialize an execution to a JSON string (deterministic)."""
    return json.dumps(
        execution_to_dict(execution), sort_keys=True, indent=None
    )


def load_execution(text: str) -> Execution:
    """Deserialize an execution from :func:`dump_execution` output."""
    return execution_from_dict(json.loads(text))


def dump_witness(witness) -> str:
    """Serialize a violation witness to JSON."""
    from repro.lowerbound.witnesses import ViolationWitness

    assert isinstance(witness, ViolationWitness)
    return json.dumps(
        {
            "format": FORMAT_VERSION,
            "kind": witness.kind.value,
            "culprit": witness.culprit,
            "counterpart": witness.counterpart,
            "note": witness.note,
            "execution": execution_to_dict(witness.execution),
        },
        sort_keys=True,
    )


def load_witness(text: str):
    """Deserialize a witness; re-verify with
    :func:`repro.lowerbound.witnesses.verify_witness` before trusting it."""
    from repro.lowerbound.witnesses import ViolationKind, ViolationWitness

    data = json.loads(text)
    if data.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported witness format {data.get('format')!r}"
        )
    return ViolationWitness(
        kind=ViolationKind(data["kind"]),
        execution=execution_from_dict(data["execution"]),
        culprit=data["culprit"],
        counterpart=data["counterpart"],
        note=data["note"],
    )
