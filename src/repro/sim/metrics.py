"""Communication-complexity accounting (§2, "Message complexity").

The paper's metric is the number of messages sent by correct processes over
the whole execution — including messages sent after all correct processes
have decided.  :class:`ComplexityReport` computes that count plus auxiliary
views (per-round, per-sender, payload-size totals) used by the benchmark
harness.  :class:`StreamingComplexity` produces the same report
incrementally as a :class:`~repro.sim.engine.RoundObserver`, so live
engine runs need no second pass over the recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.sim.engine import RoundEvent, RoundObserver
from repro.sim.execution import Execution
from repro.sim.message import payload_size
from repro.types import ProcessId, Round


@dataclass(frozen=True)
class ComplexityReport:
    """Message-complexity breakdown of one execution.

    Attributes:
        correct_messages: the paper's message complexity — messages sent by
            correct processes.
        total_messages: messages sent by all processes (informational; the
            adversary can always inflate this, so bounds never use it).
        per_round: correct-sender message counts per round.
        per_sender: message counts per correct sender.
        payload_units: crude total payload size (abstract units) of
            correct-sender messages; informational.
    """

    correct_messages: int
    total_messages: int
    per_round: Mapping[Round, int] = field(default_factory=dict)
    per_sender: Mapping[ProcessId, int] = field(default_factory=dict)
    payload_units: int = 0

    @classmethod
    def of(cls, execution: Execution) -> "ComplexityReport":
        """Measure ``execution``."""
        per_round: dict[Round, int] = {}
        per_sender: dict[ProcessId, int] = {}
        payload_units = 0
        correct = execution.correct
        correct_messages = 0
        total_messages = 0
        for pid in range(execution.n):
            behavior = execution.behavior(pid)
            sent_count = len(behavior.all_sent())
            total_messages += sent_count
            if pid not in correct:
                continue
            correct_messages += sent_count
            per_sender[pid] = sent_count
            for round_ in range(1, behavior.rounds + 1):
                round_sent = behavior.sent(round_)
                if round_sent:
                    per_round[round_] = per_round.get(round_, 0) + len(
                        round_sent
                    )
                payload_units += sum(
                    payload_size(message.payload)
                    for message in round_sent
                )
        return cls(
            correct_messages=correct_messages,
            total_messages=total_messages,
            per_round=per_round,
            per_sender=per_sender,
            payload_units=payload_units,
        )


class StreamingComplexity(RoundObserver):
    """Incremental message-complexity accounting for live engine runs.

    Tracks per-sender-per-round sent counts and payload sizes for *all*
    processes while the run unfolds, then filters by the adversary's
    final corruption set when the report is assembled — necessary
    because an adaptive adversary may corrupt a process *after* it has
    sent (§2 charges only processes outside the final faulty set ``F``).
    The produced report equals ``ComplexityReport.of`` on the recorded
    trace (asserted by the test-suite) without re-walking it.
    """

    def __init__(self) -> None:
        self._counts: dict[ProcessId, dict[Round, int]] = {}
        self._payload: dict[ProcessId, int] = {}
        self._corrupted: frozenset[ProcessId] = frozenset()
        self._n = 0

    def on_run_start(self, config, machines, adversary) -> None:
        self._n = config.n
        self._counts = {pid: {} for pid in range(config.n)}
        self._payload = {pid: 0 for pid in range(config.n)}
        self._corrupted = adversary.corrupted

    def on_round(self, event: RoundEvent) -> None:
        for pid, fragment in enumerate(event.fragments):
            if fragment.sent:
                self._counts[pid][event.round] = len(fragment.sent)
                self._payload[pid] += sum(
                    payload_size(message.payload)
                    for message in fragment.sent
                )
        self._corrupted = event.corrupted

    def on_run_end(self, final_states, corrupted) -> None:
        self._corrupted = corrupted

    @property
    def correct_messages(self) -> int:
        """The paper's metric so far: messages sent by correct processes."""
        return sum(
            count
            for pid, rounds in self._counts.items()
            if pid not in self._corrupted
            for count in rounds.values()
        )

    def report(self) -> ComplexityReport:
        """Assemble the :class:`ComplexityReport` of the observed run."""
        per_round: dict[Round, int] = {}
        per_sender: dict[ProcessId, int] = {}
        payload_units = 0
        correct_messages = 0
        total_messages = 0
        for pid in range(self._n):
            sent_count = sum(self._counts[pid].values())
            total_messages += sent_count
            if pid in self._corrupted:
                continue
            correct_messages += sent_count
            per_sender[pid] = sent_count
            payload_units += self._payload[pid]
            for round_, count in self._counts[pid].items():
                per_round[round_] = per_round.get(round_, 0) + count
        return ComplexityReport(
            correct_messages=correct_messages,
            total_messages=total_messages,
            per_round=per_round,
            per_sender=per_sender,
            payload_units=payload_units,
        )


def count_signatures(payload: object) -> int:
    """The number of signature objects embedded in a payload.

    Walks tuples, frozensets, Dolev–Strong chains and transaction-like
    objects.  Used for the §6 Dolev–Reischuk signature metric: in the
    authenticated setting, deterministic broadcast must exchange
    ``Ω(nt)`` *signatures*, a finer-grained cousin of the message bound.
    """
    from repro.crypto.chains import SignedChain
    from repro.crypto.signatures import Signature

    if isinstance(payload, Signature):
        return 1
    if isinstance(payload, SignedChain):
        return len(payload.signatures) + count_signatures(payload.value)
    if isinstance(payload, (tuple, frozenset)):
        return sum(count_signatures(element) for element in payload)
    content_method = getattr(payload, "canonical_content", None)
    if callable(content_method):
        return count_signatures(content_method())
    return 0


def signature_complexity(execution: Execution) -> int:
    """Signatures carried by messages of correct senders (§6, [51]).

    Counts every signature in every successfully sent message of a
    correct process, with chain multiplicity: relaying a k-chain moves
    ``k`` signatures.
    """
    total = 0
    for pid in execution.correct:
        behavior = execution.behavior(pid)
        for round_ in range(1, behavior.rounds + 1):
            for message in behavior.sent(round_):
                total += count_signatures(message.payload)
    return total


def dolev_reischuk_signature_floor(n: int, t: int) -> float:
    """The [51] signature floor ``Ω(nt)`` (constant set to 1)."""
    return float(n * t)


def weak_consensus_floor(t: int) -> float:
    """The paper's concrete weak-consensus floor ``t^2 / 32`` (Lemma 1).

    Same formula as
    :func:`repro.lowerbound.bound.weak_consensus_floor`; duplicated here
    so the metrics layer stays import-cycle-free.
    """
    return t * t / 32


def dolev_reischuk_floor(t: int) -> float:
    """Deprecated name for :func:`weak_consensus_floor`.

    (The actual Dolev–Reischuk floors, which depend on ``n`` and the
    authentication setting, live in
    :func:`repro.lowerbound.bound.dolev_reischuk_floor`.)
    """
    return weak_consensus_floor(t)


def meets_lower_bound(execution: Execution) -> bool:
    """Whether the execution's correct-message count reaches ``t²/32``.

    A *correct* weak-consensus algorithm must have worst-case complexity at
    least the floor; a single execution below the floor does not contradict
    the bound (the bound is a max over executions), but the specific
    adversarial executions built by :mod:`repro.lowerbound` are exactly the
    ones the argument applies to.
    """
    return execution.message_complexity() >= weak_consensus_floor(
        execution.t
    )


def quadratic_ratio(messages: int, t: int) -> float:
    """``messages / t²`` — the constant factor in front of the quadratic.

    Used by the scaling benches: for a Θ(t²)-message protocol this ratio
    stabilizes as ``t`` grows; for sub-quadratic cheaters it tends to 0.
    """
    if t == 0:
        return float("inf") if messages else 0.0
    return messages / float(t * t)
