"""The synchronous round simulator (§2, A.1).

Computation unfolds in synchronous rounds.  In each round every process
(1) performs local computation, (2) sends messages, and (3) receives the
messages sent to it in that round.  The simulator drives deterministic
:class:`~repro.sim.process.Process` machines under a static
:class:`~repro.sim.adversary.Adversary` and records a full
:class:`~repro.sim.execution.Execution` trace in the Appendix-A formalism.

Infinite executions are approximated by a finite horizon chosen by the
caller; every protocol in :mod:`repro.protocols` declares a sound
``max_rounds(n, t)`` bound, so "ran for the horizon without deciding"
witnesses a genuine termination failure for these deterministic protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProtocolViolation
from repro.sim.adversary import Adversary, NoFaults
from repro.sim.execution import Execution, check_execution
from repro.sim.message import Message
from repro.sim.process import Process, ProcessFactory
from repro.sim.state import Behavior, Fragment
from repro.types import Payload, ProcessId, Round, validate_system_size


@dataclass(frozen=True)
class SimulationConfig:
    """Static parameters of one simulated execution.

    Attributes:
        n: number of processes.
        t: corruption budget (the adversary may corrupt at most ``t``).
        rounds: the finite horizon to simulate.
        check: whether to run the full Appendix-A validity checker on the
            produced execution (cheap insurance; on by default).
    """

    n: int
    t: int
    rounds: int
    check: bool = True

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if self.rounds < 1:
            raise ValueError(f"need at least one round, got {self.rounds}")


def build_machines(
    config: SimulationConfig,
    proposals: Sequence[Payload],
    factory: ProcessFactory,
    adversary: Adversary,
) -> list[Process]:
    """Instantiate the n machines, applying Byzantine substitutions.

    Honest machines come from ``factory``; for each corrupted process the
    adversary may substitute an arbitrary machine (Byzantine model) or
    leave the honest one (omission model).
    """
    if len(proposals) != config.n:
        raise ValueError(
            f"expected {config.n} proposals, got {len(proposals)}"
        )
    adversary.validate_budget(config.n, config.t)
    machines: list[Process] = []
    for pid in range(config.n):
        proposal = proposals[pid]
        machine: Process | None = None
        if pid in adversary.corrupted:
            machine = adversary.corrupt_machine(pid, factory, proposal)
        if machine is None:
            machine = factory(pid, proposal)
        if machine.pid != pid:
            raise ProtocolViolation(
                f"factory built machine for p{machine.pid}, wanted p{pid}"
            )
        machines.append(machine)
    return machines


def run_execution(
    config: SimulationConfig,
    proposals: Sequence[Payload],
    factory: ProcessFactory,
    adversary: Adversary | None = None,
) -> Execution:
    """Simulate one execution and return its full trace.

    Args:
        config: system size, corruption budget and horizon.
        proposals: proposal of each process, indexed by id.  (Proposals of
            Byzantine-replaced processes are passed to the adversary, which
            may ignore them.)
        factory: builds the honest machine for a ``(pid, proposal)`` pair.
        adversary: the static adversary; ``None`` means no faults.

    Returns:
        The recorded :class:`Execution`, validated against the model's
        execution conditions when ``config.check`` is set.
    """
    adversary = adversary if adversary is not None else NoFaults()
    machines = build_machines(config, proposals, factory, adversary)
    recorder = _Recorder(config, machines, adversary)
    for round_ in range(1, config.rounds + 1):
        recorder.step(round_)
    return recorder.finish()


class _Recorder:
    """Internal: drives machines one round at a time and records fragments."""

    def __init__(
        self,
        config: SimulationConfig,
        machines: Sequence[Process],
        adversary: Adversary,
    ) -> None:
        self._config = config
        self._machines = machines
        self._adversary = adversary
        self._fragments: list[list[Fragment]] = [
            [] for _ in range(config.n)
        ]

    def step(self, round_: Round) -> None:
        """Simulate round ``round_``: states, sends, omissions, delivery."""
        self._adversary.begin_round(round_)
        corrupted = self._adversary.corrupted
        states = [
            machine.snapshot(round_) for machine in self._machines
        ]
        sent: list[set[Message]] = [set() for _ in self._machines]
        send_omitted: list[set[Message]] = [set() for _ in self._machines]
        inboxes: list[list[Message]] = [[] for _ in self._machines]
        for pid, machine in enumerate(self._machines):
            mapping = machine.validate_outgoing(
                round_, machine.outgoing(round_)
            )
            for receiver, payload in mapping.items():
                message = Message(pid, receiver, round_, payload)
                if pid in corrupted and self._adversary.send_omits(message):
                    send_omitted[pid].add(message)
                else:
                    sent[pid].add(message)
                    inboxes[receiver].append(message)
        for pid, machine in enumerate(self._machines):
            received: set[Message] = set()
            receive_omitted: set[Message] = set()
            for message in inboxes[pid]:
                if pid in corrupted and self._adversary.receive_omits(
                    message
                ):
                    receive_omitted.add(message)
                else:
                    received.add(message)
            self._fragments[pid].append(
                Fragment(
                    state=states[pid],
                    sent=frozenset(sent[pid]),
                    send_omitted=frozenset(send_omitted[pid]),
                    received=frozenset(received),
                    receive_omitted=frozenset(receive_omitted),
                )
            )
            machine.deliver(
                round_,
                {
                    message.sender: message.payload
                    for message in sorted(
                        received, key=lambda m: m.sender
                    )
                },
            )
        self._adversary.observe_round(
            round_,
            frozenset().union(*(frozenset(s) for s in sent))
            if sent
            else frozenset(),
        )

    def finish(self) -> Execution:
        """Assemble the execution record after the final round."""
        final_round = self._config.rounds + 1
        behaviors = tuple(
            Behavior(
                tuple(self._fragments[pid]),
                final_state=self._machines[pid].snapshot(final_round),
            )
            for pid in range(self._config.n)
        )
        execution = Execution(
            n=self._config.n,
            t=self._config.t,
            faulty=self._adversary.corrupted,
            behaviors=behaviors,
        )
        if self._config.check:
            check_execution(execution)
        return execution


def all_correct_decided(execution: Execution) -> bool:
    """Whether every correct process decided within the recorded horizon."""
    return all(
        execution.decision(pid) is not None for pid in execution.correct
    )


def run_with_uniform_proposal(
    config: SimulationConfig,
    proposal: Payload,
    factory: ProcessFactory,
    adversary: Adversary | None = None,
) -> Execution:
    """Shorthand: all processes propose the same value.

    The weak-consensus proofs revolve around the all-propose-0 and
    all-propose-1 executions; this keeps call sites readable.
    """
    return run_execution(
        config, [proposal] * config.n, factory, adversary
    )


def decisions_by_value(
    execution: Execution,
) -> dict[Payload | None, list[ProcessId]]:
    """Group correct processes by their decision (``None`` = undecided)."""
    groups: dict[Payload | None, list[ProcessId]] = {}
    for pid in sorted(execution.correct):
        groups.setdefault(execution.decision(pid), []).append(pid)
    return groups
