"""The synchronous round simulator (§2, A.1).

Computation unfolds in synchronous rounds.  In each round every process
(1) performs local computation, (2) sends messages, and (3) receives the
messages sent to it in that round.  The simulator drives deterministic
:class:`~repro.sim.process.Process` machines under a static
:class:`~repro.sim.adversary.Adversary` and records a full
:class:`~repro.sim.execution.Execution` trace in the Appendix-A formalism.

The round loop itself lives in :class:`~repro.sim.engine.RoundEngine`;
this module wires the engine to the standard observers — a
:class:`~repro.sim.engine.TraceRecorder` for the execution record, an
:class:`~repro.sim.engine.IncrementalChecker` when validation is on, and
an :class:`~repro.sim.engine.EarlyStopPolicy` when the caller allows
halting at the decision round — and keeps the historical entry points
(:func:`run_execution` and friends) stable.

Infinite executions are approximated by a finite horizon chosen by the
caller; every protocol in :mod:`repro.protocols` declares a sound
``max_rounds(n, t)`` bound, so "ran for the horizon without deciding"
witnesses a genuine termination failure for these deterministic protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProtocolViolation
from repro.sim.adversary import Adversary, NoFaults
from repro.sim.engine import (
    EarlyStopPolicy,
    IncrementalChecker,
    RoundEngine,
    RoundObserver,
    TraceRecorder,
)
from repro.sim.execution import Execution, check_execution
from repro.sim.process import Process, ProcessFactory
from repro.sim.state import Fragment
from repro.types import Payload, ProcessId, Round, validate_system_size


@dataclass(frozen=True)
class SimulationConfig:
    """Static parameters of one simulated execution.

    Attributes:
        n: number of processes.
        t: corruption budget (the adversary may corrupt at most ``t``).
        rounds: the finite horizon to simulate.
        check: whether to validate the produced execution against the
            Appendix-A model conditions (cheap insurance; on by default).
            Live runs validate round-by-round via
            :class:`~repro.sim.engine.IncrementalChecker`.
    """

    n: int
    t: int
    rounds: int
    check: bool = True

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if self.rounds < 1:
            raise ValueError(f"need at least one round, got {self.rounds}")


def build_machines(
    config: SimulationConfig,
    proposals: Sequence[Payload],
    factory: ProcessFactory,
    adversary: Adversary,
) -> list[Process]:
    """Instantiate the n machines, applying Byzantine substitutions.

    Honest machines come from ``factory``; for each corrupted process the
    adversary may substitute an arbitrary machine (Byzantine model) or
    leave the honest one (omission model).
    """
    if len(proposals) != config.n:
        raise ValueError(
            f"expected {config.n} proposals, got {len(proposals)}"
        )
    adversary.validate_budget(config.n, config.t)
    machines: list[Process] = []
    for pid in range(config.n):
        proposal = proposals[pid]
        machine: Process | None = None
        if pid in adversary.corrupted:
            machine = adversary.corrupt_machine(pid, factory, proposal)
        if machine is None:
            machine = factory(pid, proposal)
        if machine.pid != pid:
            raise ProtocolViolation(
                f"factory built machine for p{machine.pid}, wanted p{pid}"
            )
        machines.append(machine)
    return machines


def run_execution(
    config: SimulationConfig,
    proposals: Sequence[Payload],
    factory: ProcessFactory,
    adversary: Adversary | None = None,
    *,
    observers: Sequence[RoundObserver] = (),
    early_stop: bool = False,
) -> Execution:
    """Simulate one execution and return its full trace.

    Args:
        config: system size, corruption budget and horizon.
        proposals: proposal of each process, indexed by id.  (Proposals of
            Byzantine-replaced processes are passed to the adversary, which
            may ignore them.)
        factory: builds the honest machine for a ``(pid, proposal)`` pair.
        adversary: the static adversary; ``None`` means no faults.
        observers: extra :class:`RoundObserver` instances attached to the
            engine (e.g. a
            :class:`~repro.sim.metrics.StreamingComplexity` accountant).
        early_stop: halt once every correct process has decided instead of
            running to the horizon.  The truncated execution is a prefix
            of the full run with identical decisions; message complexity
            may differ for protocols that keep sending after deciding.

    Returns:
        The recorded :class:`Execution`, validated against the model's
        execution conditions when ``config.check`` is set.
    """
    adversary = adversary if adversary is not None else NoFaults()
    machines = build_machines(config, proposals, factory, adversary)
    recorder = TraceRecorder()
    attached: list[RoundObserver] = [recorder]
    if config.check:
        attached.append(IncrementalChecker())
    if early_stop:
        attached.append(EarlyStopPolicy(scope="correct"))
    attached.extend(observers)
    engine = RoundEngine(config, machines, adversary, attached)
    engine.run()
    return recorder.execution()


def resume_execution(
    config: SimulationConfig,
    machines: Sequence[Process],
    adversary: Adversary,
    prefix: Sequence[Sequence[Fragment]],
    start_round: Round,
    *,
    observers: Sequence[RoundObserver] = (),
) -> Execution:
    """Continue a partially simulated execution from ``start_round``.

    The caller supplies machines already in their start-of-``start_round``
    states (e.g. from a
    :class:`~repro.sim.engine.MachineCheckpointer` snapshot) together
    with the per-process fragments of rounds ``1 .. start_round - 1``.
    Rounds ``start_round .. config.rounds`` are simulated under
    ``adversary`` and the two parts are stitched into one full-horizon
    execution — bit-for-bit what a from-scratch simulation under an
    adversary that acts identically would record, because the machines
    are deterministic.

    Only valid for *static* adversaries: the engine does not replay the
    ``begin_round`` / ``observe_round`` hooks of the skipped prefix
    rounds.  Validation, when ``config.check`` is set, runs post-hoc on
    the stitched execution (the incremental checker cannot audit rounds
    it never saw).
    """
    recorder = TraceRecorder(prefix=prefix)
    engine = RoundEngine(
        config,
        machines,
        adversary,
        [recorder, *observers],
        first_round=start_round,
    )
    engine.run()
    execution = recorder.execution()
    if config.check:
        check_execution(execution)
    return execution


def all_correct_decided(execution: Execution) -> bool:
    """Whether every correct process decided within the recorded horizon."""
    return all(
        execution.decision(pid) is not None for pid in execution.correct
    )


def run_with_uniform_proposal(
    config: SimulationConfig,
    proposal: Payload,
    factory: ProcessFactory,
    adversary: Adversary | None = None,
    *,
    observers: Sequence[RoundObserver] = (),
    early_stop: bool = False,
) -> Execution:
    """Shorthand: all processes propose the same value.

    The weak-consensus proofs revolve around the all-propose-0 and
    all-propose-1 executions; this keeps call sites readable.
    """
    return run_execution(
        config,
        [proposal] * config.n,
        factory,
        adversary,
        observers=observers,
        early_stop=early_stop,
    )


def decisions_by_value(
    execution: Execution,
) -> dict[Payload | None, list[ProcessId]]:
    """Group correct processes by their decision (``None`` = undecided)."""
    groups: dict[Payload | None, list[ProcessId]] = {}
    for pid in sorted(execution.correct):
        groups.setdefault(execution.decision(pid), []).append(pid)
    return groups
