"""Synchronous round simulator and the Appendix-A execution formalism.

Public surface:

* :class:`~repro.sim.message.Message` — model messages.
* :class:`~repro.sim.state.StateSnapshot`, :class:`~repro.sim.state.Fragment`,
  :class:`~repro.sim.state.Behavior` — the observer's records (A.1.2–A.1.5).
* :class:`~repro.sim.execution.Execution` and
  :func:`~repro.sim.execution.check_execution` — executions and their
  validity conditions (A.1.6).
* :class:`~repro.sim.process.Process` — deterministic state machines.
* :class:`~repro.sim.adversary.Adversary` and friends — static adversaries.
* :class:`~repro.sim.engine.RoundEngine` and its
  :class:`~repro.sim.engine.RoundObserver`\\ s — the event-driven round
  loop and its pluggable per-round consumers.
* :func:`~repro.sim.simulator.run_execution` — the standard entry point
  (engine + trace recorder + incremental checker).
* :class:`~repro.sim.metrics.ComplexityReport` /
  :class:`~repro.sim.metrics.StreamingComplexity` — message accounting
  (§2), post-hoc and streaming.
* :mod:`repro.sim.kernel` — the bitmask round kernel: the same
  semantics over per-round integer bitmasks for compiled omission
  adversaries, with :class:`~repro.sim.kernel.KernelOracle`
  cross-checking it against the object engine.
"""

from repro.sim.adversary import (
    AdaptiveOmissionAdversary,
    Adversary,
    ByzantineAdversary,
    ChattiestTargetAdversary,
    CrashAdversary,
    NoFaults,
    OmissionSchedule,
    ScheduledOmissionAdversary,
    SilenceAdversary,
    compose_omissions,
)
from repro.sim.engine import (
    EarlyStopPolicy,
    IncrementalChecker,
    MachineCheckpointer,
    RoundEngine,
    RoundEvent,
    RoundObserver,
    TraceRecorder,
)
from repro.sim.execution import (
    Execution,
    ExecutionSummary,
    check_execution,
    check_transitions,
    group_decisions,
    majority_decision,
    unanimous_decision,
)
from repro.sim.kernel import (
    CompiledOmissions,
    KernelOracle,
    KernelTrace,
    PrefixForker,
    fork_kernel,
    no_faults_compiled,
    run_kernel,
)
from repro.sim.message import Message, broadcast_payload
from repro.sim.metrics import (
    ComplexityReport,
    StreamingComplexity,
    count_signatures,
    dolev_reischuk_floor,
    dolev_reischuk_signature_floor,
    meets_lower_bound,
    quadratic_ratio,
    signature_complexity,
    weak_consensus_floor,
)
from repro.sim.process import (
    Process,
    ProcessFactory,
    ReplayProcess,
    drive_replay,
)
from repro.sim.serialization import (
    dump_execution,
    dump_witness,
    execution_from_dict,
    execution_to_dict,
    load_execution,
    load_witness,
)
from repro.sim.simulator import (
    SimulationConfig,
    all_correct_decided,
    decisions_by_value,
    resume_execution,
    run_execution,
    run_with_uniform_proposal,
)
from repro.sim.state import (
    Behavior,
    Fragment,
    StateSnapshot,
    behavior_from_fragments,
    behaviors_indistinguishable,
    check_behavior,
    check_fragment,
    initial_state,
)

__all__ = [
    "AdaptiveOmissionAdversary",
    "Adversary",
    "Behavior",
    "ByzantineAdversary",
    "ChattiestTargetAdversary",
    "CompiledOmissions",
    "ComplexityReport",
    "CrashAdversary",
    "EarlyStopPolicy",
    "Execution",
    "ExecutionSummary",
    "Fragment",
    "IncrementalChecker",
    "KernelOracle",
    "KernelTrace",
    "MachineCheckpointer",
    "Message",
    "NoFaults",
    "OmissionSchedule",
    "PrefixForker",
    "Process",
    "ProcessFactory",
    "ReplayProcess",
    "RoundEngine",
    "RoundEvent",
    "RoundObserver",
    "ScheduledOmissionAdversary",
    "SilenceAdversary",
    "SimulationConfig",
    "StateSnapshot",
    "StreamingComplexity",
    "TraceRecorder",
    "all_correct_decided",
    "behavior_from_fragments",
    "behaviors_indistinguishable",
    "broadcast_payload",
    "check_behavior",
    "check_execution",
    "check_fragment",
    "check_transitions",
    "compose_omissions",
    "count_signatures",
    "decisions_by_value",
    "dolev_reischuk_floor",
    "dolev_reischuk_signature_floor",
    "dump_execution",
    "dump_witness",
    "execution_from_dict",
    "execution_to_dict",
    "load_execution",
    "load_witness",
    "signature_complexity",
    "weak_consensus_floor",
    "drive_replay",
    "fork_kernel",
    "group_decisions",
    "initial_state",
    "majority_decision",
    "meets_lower_bound",
    "no_faults_compiled",
    "quadratic_ratio",
    "resume_execution",
    "run_execution",
    "run_kernel",
    "run_with_uniform_proposal",
    "unanimous_decision",
]
