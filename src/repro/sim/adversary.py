"""Static adversaries (§2, §3).

The paper's adversary is *static*: it corrupts up to ``t`` processes before
the execution starts.  Two failure models are used:

* **Omission failures** (§3): corrupted processes still run their state
  machine, but the adversary may *send-omit* or *receive-omit* individual
  messages of corrupted processes.  Corrupted processes are unaware of the
  omissions they commit.
* **Byzantine failures** (§2): corrupted processes behave arbitrarily; here
  the adversary replaces their state machine wholesale.

:class:`Adversary` is the interface the simulator consults.  For each
message of a corrupted sender it asks :meth:`Adversary.send_omits`; for
each message addressed to a corrupted receiver it asks
:meth:`Adversary.receive_omits`; and for each corrupted process it may
substitute a machine via :meth:`Adversary.corrupt_machine`.  Omission
adversaries leave :meth:`corrupt_machine` at its default (no substitution),
which is exactly the statement that omission-faulty processes are honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.errors import AdversaryError
from repro.sim.message import Message
from repro.sim.process import Process, ProcessFactory
from repro.types import Payload, ProcessId, Round


class Adversary:
    """Base adversary: corrupts a fixed set, never interferes.

    With ``corrupted = frozenset()`` this is the no-fault adversary (used
    for the paper's fully correct executions such as ``E_0``).
    """

    def __init__(self, corrupted: Iterable[ProcessId] = ()) -> None:
        self._corrupted = frozenset(corrupted)

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        """The static set of corrupted processes (the paper's ``F``)."""
        return self._corrupted

    def validate_budget(self, n: int, t: int) -> None:
        """Raise unless the corruption set fits the budget ``t``.

        Raises:
            AdversaryError: if more than ``t`` processes are corrupted or a
                corrupted id is out of range.
        """
        if len(self._corrupted) > t:
            raise AdversaryError(
                f"adversary corrupts {len(self._corrupted)} > t={t}"
            )
        for pid in self._corrupted:
            if not 0 <= pid < n:
                raise AdversaryError(f"corrupted id {pid} outside range({n})")

    def send_omits(self, message: Message) -> bool:
        """Whether ``message`` (from a corrupted sender) is send-omitted."""
        return False

    def receive_omits(self, message: Message) -> bool:
        """Whether ``message`` (to a corrupted receiver) is receive-omitted."""
        return False

    def corrupt_machine(
        self, pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process | None:
        """A replacement machine for corrupted ``pid``, or ``None``.

        Returning ``None`` keeps the honest machine running (omission
        model).  Byzantine adversaries return an arbitrary machine; it may
        be built around the honest factory (e.g. to deviate only late).
        """
        return None

    def begin_round(self, round_: Round) -> None:
        """Hook called at the start of each round (adaptive adversaries).

        A static adversary ignores it.  An adaptive one may corrupt
        additional processes here, based on what :meth:`observe_round`
        showed it in *earlier* rounds (the paper's footnote 1: a lower
        bound for the static adversary trivially applies to the stronger
        adaptive one, so adaptivity is an optional extra, not a different
        model).  Newly corrupted processes keep their honest machines
        (adaptive corruption is omission-only here — Byzantine machine
        substitution is fixed before round 1).
        """
        return None

    def observe_round(
        self, round_: Round, sent: frozenset[Message]
    ) -> None:
        """Hook called after each round with the round's sent messages.

        ``sent`` is one flat frozenset of every message successfully sent
        this round — the engine builds it once during the send phase (it
        is the same set a :class:`~repro.sim.engine.RoundEvent` carries
        as ``all_sent``), not a per-sender union recomputed here.

        Gives adaptive adversaries the global traffic view.  Note the
        ordering: omission decisions for round ``k`` are made *before*
        ``observe_round(k, ...)`` fires, i.e. this models a non-rushing
        adaptive adversary (it cannot react to a round's messages within
        that round — the strongly rushing variant of [3] is out of
        scope)."""
        return None


NoFaults = Adversary
"""Alias: an adversary with an empty corruption set."""


@dataclass(frozen=True)
class OmissionSchedule:
    """An explicit omission schedule: which message slots are dropped.

    ``send_drops`` and ``receive_drops`` are predicates over messages; they
    are consulted only for corrupted senders/receivers respectively.  Using
    predicates (rather than enumerated slots) lets schedules cover
    executions of unknown length, e.g. "drop everything from round k on".
    """

    send_drops: Callable[[Message], bool]
    receive_drops: Callable[[Message], bool]


class ScheduledOmissionAdversary(Adversary):
    """Omission adversary driven by an :class:`OmissionSchedule`."""

    def __init__(
        self,
        corrupted: Iterable[ProcessId],
        schedule: OmissionSchedule,
    ) -> None:
        super().__init__(corrupted)
        self._schedule = schedule

    def send_omits(self, message: Message) -> bool:
        return self._schedule.send_drops(message)

    def receive_omits(self, message: Message) -> bool:
        return self._schedule.receive_drops(message)


class CrashAdversary(Adversary):
    """Crash faults expressed as omissions (a strict subset of omission).

    A process crashing in round ``k`` send-omits every message from round
    ``k`` onward and receive-omits everything from round ``k`` onward.
    (A crash that loses only part of a round's sends can be expressed with
    a :class:`ScheduledOmissionAdversary`.)
    """

    def __init__(self, crash_rounds: Mapping[ProcessId, Round]) -> None:
        super().__init__(crash_rounds.keys())
        self._crash_rounds = dict(crash_rounds)

    def send_omits(self, message: Message) -> bool:
        crash = self._crash_rounds.get(message.sender)
        return crash is not None and message.round >= crash

    def receive_omits(self, message: Message) -> bool:
        crash = self._crash_rounds.get(message.receiver)
        return crash is not None and message.round >= crash


class SilenceAdversary(Adversary):
    """Corrupted processes send nothing at all (full send-omission).

    The classic "mute" Byzantine behaviour, expressible already in the
    omission model.  Receiving is unaffected.
    """

    def send_omits(self, message: Message) -> bool:
        return message.sender in self.corrupted


class AdaptiveOmissionAdversary(Adversary):
    """Base class for adaptive omission adversaries (footnote 1).

    Starts with an empty corruption set and may corrupt up to ``budget``
    processes *during* the run via :meth:`corrupt`, typically from a
    :meth:`begin_round` override reacting to earlier traffic.  The
    corruption set is monotone (processes are never un-corrupted), and
    omission decisions are delegated to the usual predicates, consulted
    only for currently corrupted parties.
    """

    def __init__(self, budget: int) -> None:
        super().__init__(())
        if budget < 0:
            raise AdversaryError(f"negative budget {budget}")
        self._budget = budget
        self._adaptive_corrupted: set[ProcessId] = set()

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        return frozenset(self._adaptive_corrupted)

    @property
    def budget(self) -> int:
        """The maximum number of processes this adversary may corrupt."""
        return self._budget

    def corrupt(self, pid: ProcessId) -> None:
        """Corrupt ``pid`` now (idempotent).

        Raises:
            AdversaryError: if the budget is exhausted.
        """
        if pid in self._adaptive_corrupted:
            return
        if len(self._adaptive_corrupted) >= self._budget:
            raise AdversaryError(
                f"adaptive budget {self._budget} exhausted"
            )
        self._adaptive_corrupted.add(pid)

    def validate_budget(self, n: int, t: int) -> None:
        if self._budget > t:
            raise AdversaryError(
                f"adaptive budget {self._budget} exceeds t={t}"
            )


class ChattiestTargetAdversary(AdaptiveOmissionAdversary):
    """A concrete adaptive strategy: silence whoever talks the most.

    After each round it corrupts the not-yet-corrupted process that has
    sent the most messages so far (ties to the highest id) and
    send-omits everything it says from the next round on — an adaptive
    "shoot the messenger" attack.  Deterministic, so executions remain
    reproducible.
    """

    def __init__(self, budget: int) -> None:
        super().__init__(budget)
        self._sent_counts: dict[ProcessId, int] = {}
        self._silenced_from: dict[ProcessId, Round] = {}

    def observe_round(
        self, round_: Round, sent: frozenset[Message]
    ) -> None:
        for message in sent:
            self._sent_counts[message.sender] = (
                self._sent_counts.get(message.sender, 0) + 1
            )
        if len(self.corrupted) >= self.budget or not self._sent_counts:
            return
        candidates = sorted(
            (
                (count, pid)
                for pid, count in self._sent_counts.items()
                if pid not in self.corrupted
            ),
            reverse=True,
        )
        if candidates:
            _, target = candidates[0]
            self.corrupt(target)
            self._silenced_from[target] = round_ + 1

    def send_omits(self, message: Message) -> bool:
        silenced = self._silenced_from.get(message.sender)
        return silenced is not None and message.round >= silenced


class ByzantineAdversary(Adversary):
    """Replaces corrupted processes' machines with arbitrary strategies.

    Args:
        strategies: for each corrupted process, a callable
            ``(pid, honest_factory, proposal) -> Process`` building the
            malicious machine.  Processes corrupted without a strategy run
            the honest machine (i.e. they are corrupted in name only, which
            is allowed: Byzantine processes *may* behave correctly).
    """

    def __init__(
        self,
        corrupted: Iterable[ProcessId],
        strategies: Mapping[
            ProcessId,
            Callable[[ProcessId, ProcessFactory, Payload], Process],
        ] | None = None,
    ) -> None:
        super().__init__(corrupted)
        self._strategies = dict(strategies or {})
        unknown = set(self._strategies) - self._corrupted
        if unknown:
            raise AdversaryError(
                f"strategies given for non-corrupted processes {sorted(unknown)}"
            )

    def corrupt_machine(
        self, pid: ProcessId, honest_factory: ProcessFactory, proposal: Payload
    ) -> Process | None:
        strategy = self._strategies.get(pid)
        if strategy is None:
            return None
        return strategy(pid, honest_factory, proposal)


def compose_omissions(
    corrupted: Iterable[ProcessId],
    *adversaries: Adversary,
) -> Adversary:
    """An omission adversary that drops a message iff any component does.

    Used to combine, e.g., the isolation of two disjoint groups B and C in
    the merged executions of §3 into a single adversary object.
    """
    parts = tuple(adversaries)

    class _Composed(Adversary):
        def send_omits(self, message: Message) -> bool:
            return any(part.send_omits(message) for part in parts)

        def receive_omits(self, message: Message) -> bool:
            return any(part.receive_omits(message) for part in parts)

    return _Composed(corrupted)
