"""The bitmask round kernel: a compiled-by-representation fast path.

The object engine (:mod:`repro.sim.engine`) executes the synchronous
round loop of §2/A.1 as per-``(sender, receiver)``
:class:`~repro.sim.message.Message` objects wrapped in per-process
:class:`~repro.sim.state.Fragment` records — the right representation
for the proof constructions, and a wasteful one for the thousands of
near-identical simulations the Lemma-4 isolation scan performs.  This
module executes the *same* semantics over integer bitmasks:

* each round's message pattern is one integer per sender whose bit ``r``
  says "a message travels to ``r`` this round" (``n <= 64`` fits one
  machine word; Python's arbitrary-precision integers *are* the limb
  array beyond, so nothing changes for larger systems);
* the omission adversaries the lower bound needs (``isolate_group``,
  the no-fault adversary) compile to per-receiver
  ``(threshold round, allowed-sender mask)`` pairs
  (:class:`CompiledOmissions`, built by
  :func:`repro.omission.masks.compile_omissions`) so applying the
  adversary is one AND per receiver per round;
* §2 message complexity becomes popcount accumulation over send masks.

The kernel is *not* a second model implementation growing its own
semantics: the object engine stays the oracle.  A
:class:`KernelTrace` materializes — on demand — an
:class:`~repro.sim.execution.Execution` record that is bit-identical
(``==``, and byte-identical under serialization) to what
:class:`~repro.sim.engine.TraceRecorder` records for the same machines
and adversary, a claim enforced three ways in the test-suite: the
golden-equivalence fixtures, the Hypothesis differential tests in
``tests/sim/test_kernel_equivalence.py``, and the :class:`KernelOracle`
observer which steps a shadow kernel against live engine rounds.

Bit-identity mechanics worth knowing:

* delivered mappings are built by ascending-bit iteration, which is
  ascending *sender* order — exactly the object engine's inbox order;
* outgoing mappings are validated inline with the same errors
  (``validate_process_id`` / the self-message ``ProtocolViolation``) the
  object engine raises, at the same round;
* compiled adversaries never send-omit (Definition 1 isolations do
  not), so ``send_omitted`` is structurally empty.

:class:`PrefixForker` supports the batched isolation scan: a rolling
machine array is advanced through the recorded fault-free schedule and
deep-copied once per *fork round* (memoized), so candidates sharing a
fault-free prefix pay one copy at their divergence round instead of a
:class:`~repro.sim.engine.MachineCheckpointer` deep-copy at every round
boundary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import AdversaryError, ModelViolation, ProtocolViolation
from repro.sim.engine import SNAPSHOTS, RoundObserver
from repro.sim.execution import Execution
from repro.sim.message import MATERIALIZED, Message
from repro.sim.process import Process, ProcessFactory
from repro.sim.state import Behavior, Fragment, StateSnapshot
from repro.types import Payload, ProcessId, Round, validate_process_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import SimulationConfig


def group_mask(members) -> int:
    """The bitmask with exactly the bits of ``members`` set."""
    mask = 0
    for pid in members:
        mask |= 1 << pid
    return mask


def mask_members(mask: int) -> list[ProcessId]:
    """The ascending process ids whose bits are set in ``mask``."""
    members: list[ProcessId] = []
    while mask:
        low = mask & -mask
        members.append(low.bit_length() - 1)
        mask ^= low
    return members


@dataclass(frozen=True)
class CompiledOmissions:
    """An omission adversary compiled to per-receiver AND-masks.

    For receiver ``r``: in rounds ``>= thresholds[r]`` only senders
    whose bit is set in ``restricted[r]`` get through; with
    ``thresholds[r] is None`` every incoming message is delivered.
    This is exactly the shape of Definition-1 isolations (and the
    trivial no-fault adversary); richer adversaries do not compile and
    the caller must fall back to the object engine.

    Attributes:
        n: system size the masks were compiled for.
        corrupted: the adversary's static corruption set ``F``.
        thresholds: per-receiver isolation round (``None`` = never).
        restricted: per-receiver allowed-sender mask once the threshold
            round is reached.
    """

    n: int
    corrupted: frozenset[ProcessId]
    thresholds: tuple[Round | None, ...]
    restricted: tuple[int, ...]

    def validate_budget(self, n: int, t: int) -> None:
        """Mirror :meth:`repro.sim.adversary.Adversary.validate_budget`."""
        if len(self.corrupted) > t:
            raise AdversaryError(
                f"adversary corrupts {len(self.corrupted)} > t={t}"
            )
        for pid in self.corrupted:
            if not 0 <= pid < n:
                raise AdversaryError(
                    f"corrupted id {pid} outside range({n})"
                )


def no_faults_compiled(n: int) -> CompiledOmissions:
    """The compiled no-fault adversary (nothing restricted, ever)."""
    return CompiledOmissions(
        n=n,
        corrupted=frozenset(),
        thresholds=(None,) * n,
        restricted=((1 << n) - 1,) * n,
    )


class KernelRound:
    """One simulated round in mask representation.

    ``send_masks[s]`` has bit ``r`` set iff ``s`` sent to ``r``;
    ``payloads[s]`` is the sender's ``receiver -> payload`` mapping;
    ``recv_masks[r]`` / ``omit_masks[r]`` split the incoming senders of
    ``r`` into delivered and receive-omitted; ``decisions`` are the
    machine decisions *after* this round's delivery.
    """

    __slots__ = ("send_masks", "payloads", "recv_masks", "omit_masks",
                 "decisions")

    def __init__(self, send_masks, payloads, recv_masks, omit_masks,
                 decisions) -> None:
        self.send_masks = send_masks
        self.payloads = payloads
        self.recv_masks = recv_masks
        self.omit_masks = omit_masks
        self.decisions = decisions


class KernelTrace:
    """The mask-level record of one kernel run.

    Everything the lower-bound driver asks of a simulation — decisions,
    §2 message complexity, quiescence spans, and (on demand) the full
    Appendix-A :class:`Execution` — is answered from the masks;
    materialization happens once, lazily, and is cached.

    A trace produced by :func:`fork_kernel` *shares* its prefix rounds'
    :class:`KernelRound` rows with the fault-free base trace (structural
    prefix memoization), and borrows the base execution's already-built
    :class:`Fragment` objects when materializing — the mask analogue of
    :class:`~repro.sim.engine.TraceRecorder`'s resume prefix.
    """

    __slots__ = ("n", "t", "proposals", "corrupted", "rounds",
                 "prefix_rounds", "prefix_execution", "_execution")

    def __init__(
        self,
        n: int,
        t: int,
        proposals: tuple[Payload, ...],
        corrupted: frozenset[ProcessId],
        rounds: list[KernelRound],
        prefix_rounds: int = 0,
        prefix_execution: Execution | None = None,
    ) -> None:
        self.n = n
        self.t = t
        self.proposals = proposals
        self.corrupted = corrupted
        self.rounds = rounds
        self.prefix_rounds = prefix_rounds
        self.prefix_execution = prefix_execution
        self._execution: Execution | None = None

    @property
    def rounds_run(self) -> int:
        """Rounds recorded (shared prefix included)."""
        return len(self.rounds)

    def decision(self, pid: ProcessId) -> Payload | None:
        """The final decision of ``pid`` (``None`` if undecided)."""
        return self.rounds[-1].decisions[pid]

    def decisions(self) -> tuple[Payload | None, ...]:
        """All final decisions, indexed by process id."""
        return self.rounds[-1].decisions

    def message_complexity(self) -> int:
        """§2 message complexity: popcount over correct send masks."""
        corrupted = self.corrupted
        senders = [pid for pid in range(self.n) if pid not in corrupted]
        total = 0
        popcounts = 0
        for row in self.rounds:
            masks = row.send_masks
            for pid in senders:
                total += masks[pid].bit_count()
            popcounts += len(senders)
        MATERIALIZED.popcounts += popcounts
        return total

    def quiescent_toward(self, members, lo: Round, hi: Round) -> bool:
        """Mask form of :func:`repro.omission.isolation.quiescent_toward`.

        ``True`` iff no message from outside ``members`` targets a
        member (delivered *or* omitted) in rounds ``[lo, hi)``.
        """
        outside = ~group_mask(members)
        pids = sorted(members)
        for index in range(lo - 1, min(hi - 1, len(self.rounds))):
            row = self.rounds[index]
            for pid in pids:
                if (row.recv_masks[pid] | row.omit_masks[pid]) & outside:
                    return False
        return True

    def to_execution(self) -> Execution:
        """Materialize (once) the bit-identical :class:`Execution`."""
        if self._execution is None:
            self._execution = self._materialize()
        return self._execution

    def _materialize(self) -> Execution:
        n = self.n
        fragments: list[list[Fragment]] = [[] for _ in range(n)]
        start_index = 0
        if self.prefix_execution is not None and self.prefix_rounds:
            start_index = self.prefix_rounds
            for pid in range(n):
                fragments[pid].extend(
                    self.prefix_execution.behavior(pid)
                    .fragments[: self.prefix_rounds]
                )
        for index in range(start_index, len(self.rounds)):
            row = self.rounds[index]
            previous = (
                self.rounds[index - 1].decisions if index else None
            )
            for pid, fragment in enumerate(
                _round_fragments(
                    row, index + 1, n, self.proposals, previous
                )
            ):
                fragments[pid].append(fragment)
        final_decisions = self.rounds[-1].decisions
        final_round = len(self.rounds) + 1
        behaviors = tuple(
            Behavior(
                tuple(fragments[pid]),
                final_state=StateSnapshot(
                    process=pid,
                    round=final_round,
                    proposal=self.proposals[pid],
                    decision=final_decisions[pid],
                ),
            )
            for pid in range(n)
        )
        return Execution(
            n=n, t=self.t, faulty=self.corrupted, behaviors=behaviors
        )


def _round_fragments(
    row: KernelRound,
    round_: Round,
    n: int,
    proposals: Sequence[Payload],
    previous_decisions: Sequence[Payload | None] | None,
) -> list[Fragment]:
    """Materialize one round's fragments from its mask row.

    ``previous_decisions`` are the machine decisions after the previous
    round (a state carries the decision *at the start* of its round);
    ``None`` means round 1, where nobody has decided yet.
    """
    sent: list[list[Message]] = [[] for _ in range(n)]
    received: list[list[Message]] = [[] for _ in range(n)]
    omitted: list[list[Message]] = [[] for _ in range(n)]
    for sender in range(n):
        mask = row.send_masks[sender]
        payloads = row.payloads[sender]
        sender_bit = 1 << sender
        while mask:
            low = mask & -mask
            receiver = low.bit_length() - 1
            message = Message(
                sender, receiver, round_, payloads[receiver]
            )
            sent[sender].append(message)
            if row.recv_masks[receiver] & sender_bit:
                received[receiver].append(message)
            else:
                omitted[receiver].append(message)
            mask ^= low
    empty: frozenset[Message] = frozenset()
    return [
        Fragment(
            state=StateSnapshot(
                process=pid,
                round=round_,
                proposal=proposals[pid],
                decision=(
                    previous_decisions[pid]
                    if previous_decisions is not None
                    else None
                ),
            ),
            sent=frozenset(sent[pid]),
            send_omitted=empty,
            received=frozenset(received[pid]),
            receive_omitted=frozenset(omitted[pid]),
        )
        for pid in range(n)
    ]


def _step_round(
    machines: Sequence[Process],
    n: int,
    round_: Round,
    compiled: CompiledOmissions,
) -> KernelRound:
    """Simulate one round over masks: collect, AND, deliver.

    The send phase accumulates three views in one pass over the
    outgoing mappings — per-sender send masks, per-receiver incoming
    masks, and per-receiver ascending sender lists (ascending because
    the outer loop is) — so the delivery phase never iterates bits:
    unrestricted receivers get one dict comprehension, restricted ones
    one AND plus a filtered comprehension.
    """
    thresholds = compiled.thresholds
    restricted = compiled.restricted
    send_masks = [0] * n
    incoming = [0] * n
    senders_of: list[list[ProcessId]] = [[] for _ in range(n)]
    payload_rows: list[dict[ProcessId, Payload]] = []
    for pid, machine in enumerate(machines):
        mapping = machine.outgoing(round_)
        mask = 0
        sender_bit = 1 << pid
        for receiver in mapping:
            if 0 <= receiver < n and receiver != pid:
                mask |= 1 << receiver
                incoming[receiver] |= sender_bit
                senders_of[receiver].append(pid)
            else:
                # Reproduce the object engine's validation errors
                # (validate_outgoing) exactly, including their order.
                validate_process_id(receiver, n)
                raise ProtocolViolation(
                    f"p{pid} attempted a self-message in round {round_}"
                )
        send_masks[pid] = mask
        payload_rows.append(dict(mapping))
    recv_masks = [0] * n
    omit_masks = [0] * n
    for pid, machine in enumerate(machines):
        arrived = incoming[pid]
        threshold = thresholds[pid]
        if threshold is not None and round_ >= threshold:
            allow = restricted[pid]
            allowed = arrived & allow
            recv_masks[pid] = allowed
            omit_masks[pid] = arrived ^ allowed
            delivered = {
                sender: payload_rows[sender][pid]
                for sender in senders_of[pid]
                if allow >> sender & 1
            }
        else:
            recv_masks[pid] = arrived
            delivered = {
                sender: payload_rows[sender][pid]
                for sender in senders_of[pid]
            }
        machine.deliver(round_, delivered)
    MATERIALIZED.masks += 4 * n
    # Read the decision slot directly: the property indirection costs a
    # descriptor call per process per round on the hottest path.
    return KernelRound(
        send_masks,
        payload_rows,
        recv_masks,
        omit_masks,
        tuple(machine._decision for machine in machines),
    )


def _check_round(
    n: int,
    round_: Round,
    proposals: Sequence[Payload],
    previous: Sequence[Payload | None],
    machines: Sequence[Process],
    decisions: Sequence[Payload | None],
) -> None:
    """The kernel's cheap per-round validity checks.

    The structural A.1.4/A.1.6 conditions hold by construction over
    masks (no send-omissions, delivery derived from the send masks), so
    only the machine-behavioral conditions need watching: stable
    proposals and write-once decisions — the same state checks
    :class:`~repro.sim.engine.IncrementalChecker` performs.
    """
    for pid in range(n):
        if machines[pid].proposal != proposals[pid]:
            raise ModelViolation(
                f"p{pid}: proposal changed {proposals[pid]!r} -> "
                f"{machines[pid].proposal!r} at round {round_}"
            )
        before = previous[pid]
        if before is not None and decisions[pid] != before:
            raise ModelViolation(
                f"p{pid}: decision changed {before!r} -> "
                f"{decisions[pid]!r} at round {round_}"
            )


def _simulate(
    machines: list[Process],
    n: int,
    compiled: CompiledOmissions,
    first_round: Round,
    horizon: Round,
    rows: list[KernelRound],
    proposals: tuple[Payload, ...],
    early_stop: str | None,
    check: bool,
) -> None:
    """Run rounds ``first_round .. horizon``, appending rows.

    ``early_stop``: ``None`` runs to the horizon; ``"all"`` /
    ``"correct"`` mirror :class:`~repro.sim.engine.EarlyStopPolicy`
    scopes (halt after the round in which the watched processes have
    all decided).
    """
    if early_stop not in (None, "all", "correct"):
        raise ValueError(f"unknown early-stop scope {early_stop!r}")
    watched: tuple[ProcessId, ...] | None = None
    if early_stop == "correct":
        watched = tuple(
            pid for pid in range(n) if pid not in compiled.corrupted
        )
    previous: Sequence[Payload | None] = (
        rows[-1].decisions if rows else (None,) * n
    )
    for round_ in range(first_round, horizon + 1):
        row = _step_round(machines, n, round_, compiled)
        if check:
            _check_round(
                n, round_, proposals, previous, machines, row.decisions
            )
        previous = row.decisions
        rows.append(row)
        if early_stop is not None:
            decisions = row.decisions
            if watched is None:
                done = None not in decisions
            else:
                done = all(
                    decisions[pid] is not None for pid in watched
                )
            if done:
                return


def run_kernel(
    config: "SimulationConfig",
    proposals: Sequence[Payload],
    factory: ProcessFactory,
    compiled: CompiledOmissions,
    *,
    early_stop: str | None = None,
) -> KernelTrace:
    """Simulate one execution on the mask kernel from round 1.

    The kernel analogue of :func:`repro.sim.simulator.run_execution`
    for compiled omission adversaries; honors ``config.check`` with the
    kernel's cheap per-round checks (see :func:`_check_round`).
    """
    if len(proposals) != config.n:
        raise ValueError(
            f"expected {config.n} proposals, got {len(proposals)}"
        )
    compiled.validate_budget(config.n, config.t)
    machines = [
        factory(pid, proposals[pid]) for pid in range(config.n)
    ]
    rows: list[KernelRound] = []
    trace = KernelTrace(
        n=config.n,
        t=config.t,
        proposals=tuple(proposals),
        corrupted=compiled.corrupted,
        rounds=rows,
    )
    _simulate(
        machines,
        config.n,
        compiled,
        1,
        config.rounds,
        rows,
        trace.proposals,
        early_stop,
        config.check,
    )
    return trace


def fork_kernel(
    config: "SimulationConfig",
    machines: list[Process],
    compiled: CompiledOmissions,
    base: KernelTrace,
    from_round: Round,
    *,
    early_stop: str | None = None,
) -> KernelTrace:
    """Fan a candidate out of a shared fault-free prefix as a mask delta.

    ``machines`` must be in their start-of-``from_round`` states along
    the fault-free schedule (a :class:`PrefixForker` copy); rounds
    ``1 .. from_round - 1`` are *shared by reference* with ``base``
    (sound because a Definition-1 isolation acts only from its
    isolation round, and machines are deterministic), then rounds
    ``from_round .. horizon`` run under ``compiled``.
    """
    if not 1 <= from_round <= config.rounds:
        raise ValueError(
            f"from_round {from_round} outside 1..{config.rounds}"
        )
    if len(base.rounds) < from_round - 1:
        raise ValueError(
            f"base trace spans {len(base.rounds)} rounds; cannot share "
            f"a {from_round - 1}-round prefix"
        )
    compiled.validate_budget(config.n, config.t)
    rows = list(base.rounds[: from_round - 1])
    trace = KernelTrace(
        n=config.n,
        t=config.t,
        proposals=base.proposals,
        corrupted=compiled.corrupted,
        rounds=rows,
        prefix_rounds=from_round - 1,
        prefix_execution=base.to_execution(),
    )
    _simulate(
        machines,
        config.n,
        compiled,
        from_round,
        config.rounds,
        rows,
        base.proposals,
        early_stop,
        config.check,
    )
    return trace


class PrefixForker:
    """Rolling fault-free replay with memoized fork points.

    The Lemma-4 scan requests machines "at start of round k" for
    ascending ``k``.  One live machine array is advanced through the
    recorded fault-free schedule (calling ``outgoing`` then delivering
    the recorded payloads — the determinism contract requires both
    hooks to fire once per round); at each requested fork round the
    array is deep-copied once and memoized, so revisits (the final
    merge re-runs B(R), B(R+1), C(R)) cost one copy, not a replay.
    This replaces the object path's per-round
    :class:`~repro.sim.engine.MachineCheckpointer` deep-copies.

    ``enabled`` degrades to ``False`` on deepcopy-hostile machines,
    mirroring the checkpointer; callers then fall back to fresh runs.
    """

    def __init__(
        self,
        config: "SimulationConfig",
        proposals: Sequence[Payload],
        factory: ProcessFactory,
        base: KernelTrace,
    ) -> None:
        self._config = config
        self._proposals = tuple(proposals)
        self._factory = factory
        self._base = base
        self._machines: list[Process] | None = None
        self._next_round: Round = 1
        self._forks: dict[Round, list[Process]] = {}
        self.enabled = True
        self.rounds_replayed = 0

    def machines_at(
        self, round_: Round
    ) -> tuple[list[Process] | None, int]:
        """A fresh machine array at start-of-``round_``, plus the number
        of fault-free rounds replayed to get there (0 on a memoized
        fork).  Returns ``(None, 0)`` when disabled."""
        if not self.enabled:
            return None, 0
        try:
            memoized = self._forks.get(round_)
            if memoized is not None:
                return self._copy(memoized), 0
            if self._machines is None or round_ < self._next_round:
                self._machines = [
                    self._factory(pid, self._proposals[pid])
                    for pid in range(self._config.n)
                ]
                self._next_round = 1
            advanced = 0
            while self._next_round < round_:
                self._replay_round(self._next_round)
                self._next_round += 1
                advanced += 1
            snapshot = self._copy(self._machines)
            self._forks[round_] = snapshot
            self.rounds_replayed += advanced
            return self._copy(snapshot), advanced
        except Exception:  # deepcopy-hostile machines: degrade
            self.enabled = False
            self._forks.clear()
            return None, 0

    def _copy(self, machines: list[Process]) -> list[Process]:
        copied = copy.deepcopy(machines)
        SNAPSHOTS.machines += len(copied)
        return copied

    def _replay_round(self, round_: Round) -> None:
        assert self._machines is not None
        row = self._base.rounds[round_ - 1]
        recv_masks = row.recv_masks
        payload_rows = row.payloads
        for pid, machine in enumerate(self._machines):
            machine.outgoing(round_)  # contract: called once per round
            delivered: dict[ProcessId, Payload] = {}
            mask = recv_masks[pid]
            while mask:
                low = mask & -mask
                sender = low.bit_length() - 1
                delivered[sender] = payload_rows[sender][pid]
                mask ^= low
            machine.deliver(round_, delivered)


class KernelOracle(RoundObserver):
    """Cross-checks kernel rounds against live object-engine rounds.

    Attach to a :class:`~repro.sim.engine.RoundEngine` run: a shadow
    copy of the machines steps through the mask kernel in lock-step,
    and every :class:`~repro.sim.engine.RoundEvent`'s fragments and
    decisions must match the kernel round exactly.  The enforcement arm
    of the "object engine stays the oracle" invariant — used by the
    equivalence tests, not on production paths.
    """

    def __init__(self) -> None:
        self.rounds_checked = 0
        self._compiled: CompiledOmissions | None = None
        self._machines: list[Process] = []
        self._proposals: tuple[Payload, ...] = ()
        self._previous: tuple[Payload | None, ...] = ()
        self._n = 0

    def on_run_start(self, config, machines, adversary) -> None:
        from repro.omission.masks import compile_omissions

        compiled = compile_omissions(adversary, config.n)
        if compiled is None:
            raise ValueError(
                f"{type(adversary).__name__} does not compile to masks; "
                "the oracle needs a kernel-representable adversary"
            )
        self._compiled = compiled
        self._n = config.n
        self._machines = copy.deepcopy(list(machines))
        self._proposals = tuple(m.proposal for m in machines)
        self._previous = tuple(m.decision for m in machines)

    def on_round(self, event) -> None:
        assert self._compiled is not None
        row = _step_round(
            self._machines, self._n, event.round, self._compiled
        )
        fragments = tuple(
            _round_fragments(
                row, event.round, self._n, self._proposals,
                self._previous,
            )
        )
        if fragments != event.fragments:
            raise ModelViolation(
                f"kernel oracle: fragments diverge at round {event.round}"
            )
        if row.decisions != event.decisions:
            raise ModelViolation(
                f"kernel oracle: decisions diverge at round "
                f"{event.round}: kernel {row.decisions!r} vs engine "
                f"{event.decisions!r}"
            )
        self._previous = row.decisions
        self.rounds_checked += 1
