"""Executions of the model and their validity conditions (A.1.6).

An execution is a tuple ``[F, B_1, ..., B_n]`` of a faulty set and one
behavior per process, subject to five guarantees:

* *Faulty processes*: ``|F| <= t``.
* *Composition*: every ``B_i`` is a well-formed behavior of ``p_i``.
* *Send-validity*: a successfully sent message is received or
  receive-omitted by its receiver in the same round.
* *Receive-validity*: a received or receive-omitted message was successfully
  sent in the same round.
* *Omission-validity*: only processes in ``F`` commit omission faults.

:func:`check_execution` enforces all five.  The proof constructions
(``swap_omission``, ``merge``) produce :class:`Execution` values which are
re-validated by these checks, making lemmas 15 and 16 machine-checked on
every concrete instance the test-suite and benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ModelViolation
from repro.sim.message import Message
from repro.sim.state import Behavior, check_behavior
from repro.types import Payload, ProcessId, Round, validate_system_size


@dataclass(frozen=True)
class Execution:
    """A k-round execution record (A.1.6).

    Attributes:
        n: total number of processes.
        t: the corruption budget the execution must respect.
        faulty: the set ``F`` of (at most ``t``) corrupted processes.
        behaviors: one :class:`Behavior` per process, indexed by id.
    """

    n: int
    t: int
    faulty: frozenset[ProcessId]
    behaviors: tuple[Behavior, ...]

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if len(self.behaviors) != self.n:
            raise ValueError(
                f"expected {self.n} behaviors, got {len(self.behaviors)}"
            )

    @property
    def rounds(self) -> int:
        """The number of rounds the execution spans."""
        return self.behaviors[0].rounds

    @property
    def correct(self) -> frozenset[ProcessId]:
        """``Correct(E)``: processes not corrupted in this execution."""
        return frozenset(range(self.n)) - self.faulty

    def behavior(self, pid: ProcessId) -> Behavior:
        """The behavior of process ``pid``."""
        return self.behaviors[pid]

    def decision(self, pid: ProcessId) -> Payload | None:
        """The decision of process ``pid`` (``None`` if undecided)."""
        return self.behaviors[pid].decision

    def decisions(self) -> dict[ProcessId, Payload | None]:
        """All decisions, keyed by process id."""
        return {pid: self.decision(pid) for pid in range(self.n)}

    def correct_decisions(self) -> dict[ProcessId, Payload | None]:
        """Decisions of correct processes only."""
        return {pid: self.decision(pid) for pid in sorted(self.correct)}

    def proposals(self) -> dict[ProcessId, Payload]:
        """All proposals, keyed by process id."""
        return {
            pid: self.behaviors[pid].proposal for pid in range(self.n)
        }

    def message_complexity(self) -> int:
        """Messages sent by **correct** processes (§2, Message complexity).

        The paper counts every message a correct process sends, including
        those sent after all correct processes have decided, and including
        messages that faulty receivers go on to receive-omit.  Send-omitted
        messages are not sent (a correct process send-omits nothing anyway).
        """
        return sum(
            len(self.behaviors[pid].all_sent()) for pid in self.correct
        )

    def total_messages_sent(self) -> int:
        """Messages successfully sent by *all* processes (informational)."""
        return sum(
            len(behavior.all_sent()) for behavior in self.behaviors
        )

    def messages_in_round(self, round_: Round) -> frozenset[Message]:
        """All messages successfully sent in ``round_``."""
        return frozenset().union(
            *(behavior.sent(round_) for behavior in self.behaviors)
        )

    def prefix(self, rounds: int) -> "Execution":
        """The execution truncated to its first ``rounds`` rounds."""
        return Execution(
            n=self.n,
            t=self.t,
            faulty=self.faulty,
            behaviors=tuple(
                behavior.prefix(rounds) for behavior in self.behaviors
            ),
        )


def check_execution(execution: Execution) -> None:
    """Check all five execution guarantees of A.1.6.

    This is the post-hoc checker for *recorded* traces (and for the
    surgery products of :mod:`repro.omission` — swapped and merged
    executions).  Live engine runs enforce the same conditions round by
    round via :class:`~repro.sim.engine.IncrementalChecker`, which fails
    at the first offending round instead of after the horizon.

    Raises:
        ModelViolation: naming the first violated guarantee.
    """
    _check_faulty_budget(execution)
    _check_composition(execution)
    _check_send_validity(execution)
    _check_receive_validity(execution)
    _check_omission_validity(execution)


def _check_faulty_budget(execution: Execution) -> None:
    if len(execution.faulty) > execution.t:
        raise ModelViolation(
            f"|F| = {len(execution.faulty)} exceeds t = {execution.t}"
        )
    for pid in execution.faulty:
        if not 0 <= pid < execution.n:
            raise ModelViolation(f"faulty set names unknown process {pid}")


def _check_composition(execution: Execution) -> None:
    rounds = execution.rounds
    for pid, behavior in enumerate(execution.behaviors):
        if behavior.process != pid:
            raise ModelViolation(
                f"behavior at index {pid} belongs to "
                f"process {behavior.process}"
            )
        if behavior.rounds != rounds:
            raise ModelViolation(
                f"p{pid} spans {behavior.rounds} rounds, "
                f"execution spans {rounds}"
            )
        check_behavior(behavior)


def _check_send_validity(execution: Execution) -> None:
    for behavior in execution.behaviors:
        for fragment in behavior:
            for message in fragment.sent:
                receiver = execution.behaviors[message.receiver]
                incoming = receiver.fragment(message.round).all_incoming
                if message not in incoming:
                    raise ModelViolation(
                        f"send-validity: {message} sent but neither "
                        "received nor receive-omitted"
                    )


def _check_receive_validity(execution: Execution) -> None:
    for behavior in execution.behaviors:
        for fragment in behavior:
            for message in fragment.all_incoming:
                sender = execution.behaviors[message.sender]
                if message not in sender.sent(message.round):
                    raise ModelViolation(
                        f"receive-validity: {message} received or "
                        "receive-omitted but never successfully sent"
                    )


def _check_omission_validity(execution: Execution) -> None:
    for pid, behavior in enumerate(execution.behaviors):
        if behavior.commits_fault and pid not in execution.faulty:
            raise ModelViolation(
                f"omission-validity: p{pid} commits omission faults but "
                "is not in the faulty set"
            )


TransitionOracle = Callable[
    [ProcessId, Payload],
    "object",
]
"""A factory producing a fresh deterministic state machine for a process.

The returned object must expose the :class:`repro.sim.process.Process`
interface.  Used by :func:`check_transitions` to validate behavior
condition 7 (fragments chained by the algorithm's transition function).
"""


def check_transitions(
    execution: Execution, factory: TransitionOracle
) -> None:
    """Check behavior condition 7 of A.1.5 against a concrete algorithm.

    Re-runs a fresh state machine per process, feeding it exactly the
    received sets recorded in the execution, and verifies that the machine
    would emit exactly the recorded outgoing message sets
    (``sent ∪ send_omitted``) each round and reach the recorded decisions.

    This is the mechanical statement that every recorded behavior is an
    honest run of the algorithm under some omission pattern — the defining
    property of the omission failure model (faulty processes "act according
    to their state machine at all times", §3).

    Raises:
        ModelViolation: if any recorded fragment is not what the algorithm
            would have produced.
    """
    from repro.sim.process import drive_replay  # local: avoid import cycle

    for pid in range(execution.n):
        behavior = execution.behaviors[pid]
        machine = factory(pid, behavior.proposal)
        drive_replay(machine, behavior)


def group_decisions(
    execution: Execution, group: Iterable[ProcessId]
) -> dict[ProcessId, Payload | None]:
    """Decisions of the processes in ``group``."""
    return {pid: execution.decision(pid) for pid in sorted(group)}


def unanimous_decision(
    execution: Execution, group: Iterable[ProcessId]
) -> Payload:
    """The unique decision of ``group``; raises if absent or split.

    Used where the paper argues "all processes from group A decide b"
    (Termination + Agreement give existence and uniqueness for correct
    groups).

    Raises:
        ModelViolation: if some process in the group is undecided or the
            group's decisions differ.
    """
    values: set[Payload] = set()
    for pid in sorted(group):
        decision = execution.decision(pid)
        if decision is None:
            raise ModelViolation(f"p{pid} is undecided")
        values.add(decision)
    if len(values) != 1:
        raise ModelViolation(f"group decisions differ: {sorted(map(repr, values))}")
    return next(iter(values))


def majority_decision(
    execution: Execution, group: Sequence[ProcessId]
) -> Payload | None:
    """The value decided by a strict majority of ``group``, if any.

    Lemma 2 guarantees a strict majority (> |Y|/2) of an isolated group
    decides the correct group's bit; this helper extracts that majority
    value, returning ``None`` when no value is decided by a strict
    majority.
    """
    counts: dict[Payload, int] = {}
    for pid in group:
        decision = execution.decision(pid)
        if decision is None:
            continue
        counts[decision] = counts.get(decision, 0) + 1
    for value, count in counts.items():
        if count * 2 > len(group):
            return value
    return None


@dataclass(frozen=True)
class ExecutionSummary:
    """A compact, printable summary of an execution (for reports/tables)."""

    n: int
    t: int
    rounds: int
    faulty: tuple[ProcessId, ...]
    message_complexity: int
    decisions: Mapping[ProcessId, Payload | None] = field(default_factory=dict)

    @classmethod
    def of(cls, execution: Execution) -> "ExecutionSummary":
        """Summarize ``execution``."""
        return cls(
            n=execution.n,
            t=execution.t,
            rounds=execution.rounds,
            faulty=tuple(sorted(execution.faulty)),
            message_complexity=execution.message_complexity(),
            decisions=execution.correct_decisions(),
        )

    def render(self) -> str:
        """A one-line human-readable rendering."""
        return (
            f"n={self.n} t={self.t} rounds={self.rounds} "
            f"faulty={list(self.faulty)} "
            f"msgs(correct)={self.message_complexity} "
            f"decisions={dict(self.decisions)}"
        )
