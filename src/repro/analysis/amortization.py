"""Multi-shot broadcast amortization harness (§6, [96, 97]).

[97] shows multi-shot Byzantine broadcast admits O(n) *amortized* cost.
This harness runs ``k`` sequential broadcast instances (fresh instance
tags, shared key registry) and reports per-shot and amortized message
counts — the measurement that motivates the amortization line of work.
Our per-shot Dolev–Strong is quadratic, so the amortized curve here is
flat-quadratic; the harness exists to expose the metric and the baseline
an amortizing protocol would be compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.dolev_strong import dolev_strong_spec
from repro.sim.execution import Execution
from repro.types import Payload, ProcessId


@dataclass(frozen=True)
class MultiShotReport:
    """Cost profile of ``k`` sequential broadcast shots.

    Attributes:
        shots: per-shot correct-sender message counts.
        decisions: per-shot decided values (of process 0).
    """

    shots: tuple[int, ...]
    decisions: tuple[Payload, ...]

    @property
    def total_messages(self) -> int:
        return sum(self.shots)

    @property
    def amortized_messages(self) -> float:
        """Messages per shot — the [97] metric."""
        if not self.shots:
            return 0.0
        return self.total_messages / len(self.shots)


def run_multi_shot_broadcast(
    n: int,
    t: int,
    payloads: list[Payload],
    sender: ProcessId = 0,
    *,
    seed: bytes | str = b"repro-ms",
) -> MultiShotReport:
    """Run one broadcast per payload (sequential shots, fresh instances).

    Each shot is an independent synchronous execution with its own
    domain-separated instance tag (replay across shots is therefore
    impossible; tested in the suite).
    """
    shots: list[int] = []
    decisions: list[Payload] = []
    for index, payload in enumerate(payloads):
        spec = dolev_strong_spec(
            n, t, sender=sender, seed=seed, instance=("shot", index)
        )
        proposals: list[Payload] = [None] * n
        proposals[sender] = payload
        execution: Execution = spec.run(proposals)
        shots.append(execution.message_complexity())
        decisions.append(execution.decision(0))
    return MultiShotReport(
        shots=tuple(shots), decisions=tuple(decisions)
    )
