"""Round-complexity (latency) accounting.

The Dolev–Strong lower bound recalled in §6 ([52]) says ``t + 1`` rounds
are necessary for deterministic Byzantine broadcast in the worst case;
our Dolev–Strong implementation decides in exactly ``t + 1`` and Phase
King in ``3(t + 1)``.  These helpers extract per-process decision rounds
from recorded executions so tests and benches can assert the latency
profile alongside the message profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.execution import Execution
from repro.types import ProcessId, Round


@dataclass(frozen=True)
class LatencyReport:
    """Decision-round statistics over the correct processes.

    Attributes:
        decision_rounds: round *during* which each correct process
            decided (``None``: undecided within the horizon).
        earliest: the fastest correct decision, or ``None``.
        latest: the slowest correct decision, or ``None``.
    """

    decision_rounds: dict[ProcessId, Round | None]

    @property
    def earliest(self) -> Round | None:
        rounds = [r for r in self.decision_rounds.values() if r]
        return min(rounds) if rounds else None

    @property
    def latest(self) -> Round | None:
        rounds = [r for r in self.decision_rounds.values() if r]
        return max(rounds) if rounds else None

    @property
    def all_decided(self) -> bool:
        """Whether every correct process decided within the horizon."""
        return all(
            round_ is not None
            for round_ in self.decision_rounds.values()
        )

    @classmethod
    def of(cls, execution: Execution) -> "LatencyReport":
        """Measure ``execution``."""
        return cls(
            decision_rounds={
                pid: execution.behavior(pid).decision_round
                for pid in sorted(execution.correct)
            }
        )


def dolev_strong_round_floor(t: int) -> int:
    """The [52] bound: ``t + 1`` rounds are necessary in the worst case."""
    return t + 1
