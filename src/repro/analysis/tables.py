"""Plain-text table rendering for benchmark and example reports.

The harness prints the same row/series structure the experiments define
(EXPERIMENTS.md records the outputs); no plotting dependencies are used —
tables render as monospace text.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.complexity import SweepPoint


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A simple aligned monospace table."""
    materialized = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [fmt(list(headers))]
    lines.append(fmt(["-" * width for width in widths]))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_sweep(points: Sequence[SweepPoint]) -> str:
    """The standard complexity-sweep table (E1/E3/E7)."""
    return render_table(
        headers=(
            "protocol",
            "n",
            "t",
            "worst msgs",
            "scenario",
            "t^2/32",
            "msgs/floor",
            "msgs/t^2",
        ),
        rows=[
            (
                point.protocol,
                point.n,
                point.t,
                point.worst_messages,
                point.scenario,
                f"{point.floor:.1f}",
                f"{point.ratio_to_floor:.2f}",
                f"{point.ratio_to_t_squared:.3f}",
            )
            for point in points
        ],
    )


def render_kv(title: str, pairs: Iterable[tuple[str, object]]) -> str:
    """A titled key/value block."""
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def render_execution(execution, max_rounds: int | None = None) -> str:
    """A round-by-round view of an execution for reports and teaching.

    One row per round: messages sent by correct/faulty processes,
    omissions committed, and which processes decided during the round.
    """
    from repro.sim.execution import Execution

    assert isinstance(execution, Execution)
    horizon = execution.rounds
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)
    decided_during: dict[int, list[int]] = {}
    for pid in range(execution.n):
        round_ = execution.behavior(pid).decision_round
        if round_ is not None and round_ <= horizon:
            decided_during.setdefault(round_, []).append(pid)
    rows = []
    for round_ in range(1, horizon + 1):
        sent_correct = sent_faulty = send_omitted = receive_omitted = 0
        for pid in range(execution.n):
            fragment = execution.behavior(pid).fragment(round_)
            if pid in execution.correct:
                sent_correct += len(fragment.sent)
            else:
                sent_faulty += len(fragment.sent)
            send_omitted += len(fragment.send_omitted)
            receive_omitted += len(fragment.receive_omitted)
        deciders = decided_during.get(round_, [])
        rows.append(
            (
                round_,
                sent_correct,
                sent_faulty,
                send_omitted,
                receive_omitted,
                ",".join(f"p{pid}" for pid in deciders) or "-",
            )
        )
    header = (
        f"execution: n={execution.n} t={execution.t} "
        f"faulty={sorted(execution.faulty)}"
    )
    return header + "\n" + render_table(
        ("round", "sent(correct)", "sent(faulty)", "send-omit",
         "recv-omit", "decided"),
        rows,
    )
