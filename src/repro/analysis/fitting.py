"""Scaling-law fits for the complexity sweeps (E1/E3/E7 shape checks).

The paper's claim is asymptotic: worst-case messages grow as ``Ω(t²)`` for
correct algorithms and (for the cheaters we break) as ``o(t²)``.  A log-log
linear fit of ``messages = a · t^k`` recovers the exponent ``k``; the
benches assert ``k ≈ 2`` (or more) for bound-respecting protocols and
``k < 2`` (with a sub-floor constant) for cheaters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.complexity import SweepPoint


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted ``messages ≈ coefficient · t^exponent`` law.

    Attributes:
        exponent: the fitted power of ``t``.
        coefficient: the fitted multiplicative constant.
        r_squared: goodness of fit in log-log space.
        points: number of samples used.
    """

    exponent: float
    coefficient: float
    r_squared: float
    points: int

    def predict(self, t: int) -> float:
        """The fitted message count at ``t``."""
        return self.coefficient * t**self.exponent

    def render(self) -> str:
        return (
            f"messages ≈ {self.coefficient:.3g} · t^{self.exponent:.2f} "
            f"(R²={self.r_squared:.3f}, {self.points} points)"
        )


def fit_power_law(
    ts: Sequence[int], messages: Sequence[int]
) -> PowerLawFit:
    """Least-squares fit in log-log space.

    Zero-message samples are excluded (log undefined); an all-zero series
    fits the degenerate law ``0 · t^0``.

    Raises:
        ValueError: on mismatched lengths or fewer than two usable points
            (and not the all-zero degenerate case).
    """
    if len(ts) != len(messages):
        raise ValueError("ts and messages must have equal length")
    usable = [
        (t, m) for t, m in zip(ts, messages) if t > 0 and m > 0
    ]
    if not usable:
        return PowerLawFit(
            exponent=0.0, coefficient=0.0, r_squared=1.0, points=0
        )
    if len(usable) < 2:
        raise ValueError(
            "need at least two non-zero samples for a power-law fit"
        )
    log_t = np.log([t for t, _ in usable])
    log_m = np.log([m for _, m in usable])
    slope, intercept = np.polyfit(log_t, log_m, 1)
    predicted = slope * log_t + intercept
    residual = float(np.sum((log_m - predicted) ** 2))
    total = float(np.sum((log_m - np.mean(log_m)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(math.exp(intercept)),
        r_squared=r_squared,
        points=len(usable),
    )


def fit_sweep(points: Sequence[SweepPoint]) -> PowerLawFit:
    """Fit the exponent of a :func:`repro.analysis.complexity.sweep`."""
    return fit_power_law(
        [point.t for point in points],
        [point.worst_messages for point in points],
    )


def is_superquadratic(
    fit: PowerLawFit, *, tolerance: float = 0.25
) -> bool:
    """Whether the fitted exponent is ≥ 2 (within tolerance)."""
    return fit.points > 0 and fit.exponent >= 2.0 - tolerance


def is_subquadratic(
    fit: PowerLawFit, *, tolerance: float = 0.25
) -> bool:
    """Whether the fitted exponent is < 2 (within tolerance).

    The degenerate zero-message fit counts as sub-quadratic (it is the
    strongest possible violation of the floor).
    """
    if fit.points == 0:
        return True
    return fit.exponent <= 2.0 - tolerance
