"""Measurement, fitting and reporting harness for the experiments.

* :mod:`repro.analysis.complexity` — (n, t) sweeps of worst-case message
  counts across fault-free and adversarial scenarios.
* :mod:`repro.analysis.fitting` — power-law exponent fits (the Ω(t²) /
  o(t²) shape checks).
* :mod:`repro.analysis.tables` — monospace table rendering.
"""

from repro.analysis.complexity import (
    SweepPoint,
    default_scenarios,
    exhaustive_isolation_scan,
    measure_point,
    mixed_workload,
    quadratic_parameter_grid,
    sweep,
    uniform_workloads,
)
from repro.analysis.amortization import (
    MultiShotReport,
    run_multi_shot_broadcast,
)
from repro.analysis.latency import LatencyReport, dolev_strong_round_floor
from repro.analysis.fitting import (
    PowerLawFit,
    fit_power_law,
    fit_sweep,
    is_subquadratic,
    is_superquadratic,
)
from repro.analysis.spacetime import render_divergence, render_spacetime
from repro.analysis.tables import (
    render_execution,
    render_kv,
    render_sweep,
    render_table,
)

__all__ = [
    "LatencyReport",
    "MultiShotReport",
    "PowerLawFit",
    "run_multi_shot_broadcast",
    "SweepPoint",
    "dolev_strong_round_floor",
    "default_scenarios",
    "exhaustive_isolation_scan",
    "fit_power_law",
    "fit_sweep",
    "is_subquadratic",
    "is_superquadratic",
    "measure_point",
    "mixed_workload",
    "quadratic_parameter_grid",
    "render_divergence",
    "render_execution",
    "render_kv",
    "render_spacetime",
    "render_sweep",
    "render_table",
    "sweep",
    "uniform_workloads",
]
