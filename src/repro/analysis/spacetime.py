"""ASCII space-time diagrams of executions (Figures 1 and 2, literally).

The paper's two figures are space-time pictures: processes as columns,
rounds as rows, colors marking where local behaviour starts deviating
from a reference execution.  :func:`render_spacetime` reproduces them in
monochrome ASCII:

* ``.`` — the process sent nothing this round;
* ``o`` — sent messages, none omitted;
* ``x`` — committed a send-omission this round;
* ``r`` — committed a receive-omission this round (isolation's mark);
* ``D`` — decided during this round (overrides the above).

:func:`render_divergence` adds the figure's colour bands against a
reference execution: ``=`` where the process's attempted sends match the
reference ("green"), ``#`` from the first round they deviate ("red" for
the isolated group, "blue" for the propagated wave — in ASCII both render
as ``#``; the row where each column flips is the band boundary).
"""

from __future__ import annotations

from typing import Iterable

from repro.omission.indistinguishability import first_send_divergence
from repro.sim.execution import Execution
from repro.types import ProcessId


def _column_header(n: int, faulty: frozenset[ProcessId]) -> list[str]:
    cells = []
    for pid in range(n):
        marker = f"p{pid}"
        if pid in faulty:
            marker += "*"
        cells.append(marker)
    return cells


def render_spacetime(
    execution: Execution,
    *,
    max_rounds: int | None = None,
) -> str:
    """One character per (round, process); see module docstring."""
    horizon = execution.rounds
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)
    decided_during: dict[ProcessId, int] = {}
    for pid in range(execution.n):
        round_ = execution.behavior(pid).decision_round
        if round_ is not None:
            decided_during[pid] = round_
    header = _column_header(execution.n, execution.faulty)
    widths = [max(2, len(cell)) for cell in header]
    lines = [
        "rnd  "
        + " ".join(
            cell.ljust(width) for cell, width in zip(header, widths)
        ),
        "     " + " ".join("-" * width for width in widths),
    ]
    for round_ in range(1, horizon + 1):
        cells = []
        for pid in range(execution.n):
            fragment = execution.behavior(pid).fragment(round_)
            if decided_during.get(pid) == round_:
                symbol = "D"
            elif fragment.send_omitted:
                symbol = "x"
            elif fragment.receive_omitted:
                symbol = "r"
            elif fragment.sent:
                symbol = "o"
            else:
                symbol = "."
            cells.append(symbol)
        lines.append(
            f"{round_:>3}  "
            + " ".join(
                cell.ljust(width)
                for cell, width in zip(cells, widths)
            )
        )
    lines.append(
        "     (o sent, . quiet, x send-omit, r recv-omit, D decided; "
        "* faulty)"
    )
    return "\n".join(lines)


def render_divergence(
    reference: Execution,
    variant: Execution,
    *,
    max_rounds: int | None = None,
    groups: Iterable[frozenset[ProcessId]] = (),
) -> str:
    """The Figure-1 bands: ``=`` matches the reference, ``#`` deviates.

    A process's column flips to ``#`` at its first *send* divergence
    (attempted sends differ from the reference) and stays flipped — the
    ASCII version of the figure's green→red/blue transition.  Columns of
    ``groups`` members are capitalized in the header for orientation.
    """
    if reference.n != variant.n:
        raise ValueError("executions have different system sizes")
    horizon = min(reference.rounds, variant.rounds)
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)
    grouped: set[ProcessId] = set()
    for group in groups:
        grouped |= set(group)
    flips = {
        pid: first_send_divergence(reference, variant, pid)
        for pid in range(reference.n)
    }
    header = []
    for pid in range(reference.n):
        marker = f"P{pid}" if pid in grouped else f"p{pid}"
        header.append(marker)
    widths = [max(2, len(cell)) for cell in header]
    lines = [
        "rnd  "
        + " ".join(
            cell.ljust(width) for cell, width in zip(header, widths)
        ),
        "     " + " ".join("-" * width for width in widths),
    ]
    for round_ in range(1, horizon + 1):
        cells = []
        for pid in range(reference.n):
            flip = flips[pid]
            cells.append(
                "#" if flip is not None and round_ >= flip else "="
            )
        lines.append(
            f"{round_:>3}  "
            + " ".join(
                cell.ljust(width)
                for cell, width in zip(cells, widths)
            )
        )
    lines.append(
        "     (= sends match the reference, # sends deviate; "
        "Pk = isolated-group member)"
    )
    return "\n".join(lines)
