"""Message-complexity sweeps (experiments E1, E3, E7).

Runs protocols across a range of ``(n, t)`` parameters and workloads,
recording the worst correct-sender message count seen per point.  The
sweeps deliberately include the adversarial scenarios of the lower-bound
argument (group isolations) alongside fault-free runs — the paper's metric
is a worst case over *all* executions, and for several protocols the
fault-free run is not the maximizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.lowerbound.bound import weak_consensus_floor
from repro.lowerbound.partition import canonical_partition
from repro.omission.isolation import isolate_group
from repro.protocols.base import ProtocolSpec, SpecBuilder
from repro.sim.adversary import Adversary
from repro.types import Payload


@dataclass(frozen=True)
class SweepPoint:
    """One measured parameter point.

    Attributes:
        protocol: the measured protocol's name.
        n, t: parameters.
        worst_messages: max correct-sender messages across the scenarios.
        scenario: which scenario attained the max.
        floor: the ``t²/32`` reference line.
    """

    protocol: str
    n: int
    t: int
    worst_messages: int
    scenario: str

    @property
    def floor(self) -> float:
        return weak_consensus_floor(self.t)

    @property
    def ratio_to_floor(self) -> float:
        floor = self.floor
        if floor == 0:
            return float("inf") if self.worst_messages else 1.0
        return self.worst_messages / floor

    @property
    def ratio_to_t_squared(self) -> float:
        if self.t == 0:
            return float("inf") if self.worst_messages else 0.0
        return self.worst_messages / float(self.t * self.t)


def default_scenarios(
    spec: ProtocolSpec, proposals: Sequence[Payload]
) -> list[tuple[str, Sequence[Payload], Adversary | None]]:
    """The standard scenario battery: fault-free plus group isolations."""
    scenarios: list[
        tuple[str, Sequence[Payload], Adversary | None]
    ] = [("fault-free", proposals, None)]
    if spec.t >= 2:
        partition = canonical_partition(spec.n, spec.t)
        scenarios.append(
            (
                "isolate-B@1",
                proposals,
                isolate_group(partition.group_b, 1),
            )
        )
        mid = max(1, spec.rounds // 2)
        scenarios.append(
            (
                f"isolate-C@{mid}",
                proposals,
                isolate_group(partition.group_c, mid),
            )
        )
    return scenarios


def measure_point(
    spec: ProtocolSpec,
    proposal_sets: Iterable[Sequence[Payload]],
) -> SweepPoint:
    """Worst message count for one spec across proposals × scenarios."""
    worst = -1
    worst_scenario = "none"
    for proposals in proposal_sets:
        for label, workload, adversary in default_scenarios(
            spec, proposals
        ):
            execution = spec.run(list(workload), adversary)
            messages = execution.message_complexity()
            if messages > worst:
                worst = messages
                worst_scenario = label
    return SweepPoint(
        protocol=spec.name,
        n=spec.n,
        t=spec.t,
        worst_messages=worst,
        scenario=worst_scenario,
    )


def uniform_workloads(
    n: int, values: Sequence[Payload] = (0, 1)
) -> list[list[Payload]]:
    """The all-same-value workloads (the lower bound's executions)."""
    return [[value] * n for value in values]


def mixed_workload(
    n: int, values: Sequence[Payload] = (0, 1)
) -> list[Payload]:
    """A deterministic round-robin mix of the value domain."""
    return [values[index % len(values)] for index in range(n)]


def sweep(
    builder: SpecBuilder,
    parameters: Iterable[tuple[int, int]],
    *,
    include_mixed: bool = True,
) -> list[SweepPoint]:
    """Measure ``builder`` across parameter points (E1/E7 harness)."""
    points: list[SweepPoint] = []
    for n, t in parameters:
        spec = builder(n, t)
        workloads: list[Sequence[Payload]] = uniform_workloads(n)
        if include_mixed:
            workloads.append(mixed_workload(n))
        points.append(measure_point(spec, workloads))
    return points


def exhaustive_isolation_scan(
    spec: ProtocolSpec,
    proposals: Sequence[Payload],
) -> SweepPoint:
    """Worst message count over *every* single-group isolation round.

    The default scenario battery samples two isolation rounds; this scan
    tries every ``k ∈ [1, rounds]`` for both canonical groups — the
    honest way to approximate the worst case for protocols whose traffic
    depends on when the adversary strikes (e.g. the ring cheater).
    """
    worst = spec.run(list(proposals)).message_complexity()
    worst_scenario = "fault-free"
    if spec.t >= 2:
        partition = canonical_partition(spec.n, spec.t)
        for group_label, group in (
            ("B", partition.group_b),
            ("C", partition.group_c),
        ):
            for k in range(1, spec.rounds + 1):
                execution = spec.run(
                    list(proposals), isolate_group(group, k)
                )
                messages = execution.message_complexity()
                if messages > worst:
                    worst = messages
                    worst_scenario = f"isolate-{group_label}@{k}"
    return SweepPoint(
        protocol=spec.name,
        n=spec.n,
        t=spec.t,
        worst_messages=worst,
        scenario=worst_scenario,
    )


ParameterGrid = Callable[[], Iterable[tuple[int, int]]]


def quadratic_parameter_grid(
    max_t: int, *, slack: int = 4, step: int = 4
) -> list[tuple[int, int]]:
    """(n, t) pairs with ``n = t + slack`` — the high-resilience regime.

    The lower bound is about ``t``; holding ``n - t`` constant isolates
    the quadratic term from population effects.
    """
    return [
        (t + slack, t) for t in range(step, max_t + 1, step)
    ]
