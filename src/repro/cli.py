"""Command-line interface: ``python -m repro <experiment> [...]``.

Subcommands:

* ``e1`` … ``e9`` — run one experiment and print its report.
* ``all`` — run the full suite (EXPERIMENTS.md regeneration).
* ``attack`` — run the lower-bound pipeline on a named cheater (or the
  correct protocol) at chosen ``(n, t)``.
* ``certify`` — run the attack and write a portable v1 certificate
  artifact (or, with ``matrix``, one artifact per seed-matrix cell).
* ``verify-cert`` — independently verify saved certificate artifacts;
  exit 1 with the first violated condition named on rejection.
* ``classify`` — classify a named standard problem at ``(n, t)``.
* ``trace`` — render a persisted run recording (legacy ledger JSONL or
  world log, sniffed) as a phase-tree timeline.
* ``report --trend`` — append a canary perf point to the trend store
  (legacy ``trend.jsonl`` or a world log) and diff it against the
  previous point.
* ``log show`` / ``log derive`` / ``log import`` / ``log resume`` —
  the world-log toolbox: list an append-only record store (with
  ``--kind/--cell/--run/--tail`` filters), re-derive the legacy
  artifact views from it, fold legacy files into a fresh log, and
  finish an interrupted sweep from its recorded plan.
* ``log replay`` / ``log diff`` / ``log stats`` — time travel: step a
  past run record-by-record (``--at TICK`` one-shot or stdin-driven),
  semantically diff two logs of the same matrix (key-aligned, timing
  ignored; exit 1 at the first real divergence), and extract new
  metrics from old logs as trend-shaped JSON.
* ``bench run`` / ``bench compare`` / ``bench list`` — the benchmark
  observatory: measure registered kernels outside pytest, append the
  points to per-suite ``BENCH_<suite>.json`` trajectories, and gate
  trajectories against a baseline with the noise-aware threshold.
* ``serve`` / ``submit`` / ``jobs`` / ``watch`` — the attack service:
  a multi-tenant job server over a world log (idempotent job keys,
  per-tenant quotas and rate limits, priorities, crash-resume), its
  submission client, the job manifest (live from the server or
  offline from the log), and a live record stream for one job.

Stream discipline: *results* (experiment reports, attack renders, sweep
tables, verdicts, trace timelines, bench tables) go to stdout;
*diagnostics* (the ``--log`` narrative, profile/timing tables, live
sweep progress, "written to" notices, rejection details, errors) go to
stderr, so piped output stays clean.  Every failure path exits nonzero:
``1`` for domain failures (violated expectations, rejected artifacts,
sweep-cell errors, flagged bench regressions), ``2`` for environment
failures (unreadable, unwritable or malformed files).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ArtifactError, ReproError
from repro.experiments import ALL_EXPERIMENTS, CHEATERS
from repro.lowerbound.driver import attack_weak_consensus
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.solvability.theorem import classify
from repro.validity.standard import (
    byzantine_broadcast_problem,
    correct_proposal_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)

_PROBLEMS = {
    "weak": weak_consensus_problem,
    "strong": strong_consensus_problem,
    "broadcast": byzantine_broadcast_problem,
    "ic": interactive_consistency_problem,
    "correct-proposal": correct_proposal_problem,
}


def _sweepable_builders():
    from repro.protocols.dolev_strong import dolev_strong_spec
    from repro.protocols.interactive_consistency import (
        authenticated_ic_spec,
    )

    builders = {
        "weak-consensus": lambda n, t: broadcast_weak_consensus_spec(
            n, t
        ),
        "dolev-strong": lambda n, t: dolev_strong_spec(n, t),
        "ic": lambda n, t: authenticated_ic_spec(n, t),
    }
    builders.update(CHEATERS)
    return builders


_SWEEPABLE = _sweepable_builders()


def _info(message: str) -> None:
    """Print one diagnostic line to stderr (stdout stays machine-clean)."""
    print(message, file=sys.stderr)


def _progress_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "live sweep status line on stderr (cells done/total, ETA, "
            "stall flag); default: on when stderr is a terminal"
        ),
    )
    subparser.add_argument(
        "--stall-after",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "flag the sweep as stalled after this many seconds "
            "without a cell completing (default: 30)"
        ),
    )


def _resolve_progress(args: argparse.Namespace) -> bool:
    """The effective progress setting: explicit flag, else tty auto."""
    flag = getattr(args, "progress", None)
    if flag is None:
        return sys.stderr.isatty()
    return flag


def _telemetry_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "sample telemetry.snapshot records into the --ledger "
            "world log (observability-only: invisible to resume, "
            "recovery and the semantic differ)"
        ),
    )
    subparser.add_argument(
        "--telemetry-interval",
        default=None,
        metavar="SECONDS",
        help=(
            "seconds between telemetry samples (default: 1; "
            "implies --telemetry)"
        ),
    )


def _ledger_option(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--ledger",
        metavar="PATH",
        help=(
            "record the run to PATH: a '*.worldlog' suffix writes the "
            "append-only world log (render with 'repro trace', derive "
            "artifacts with 'repro log derive'); any other suffix "
            "writes the legacy event-ledger JSONL"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of 'All Byzantine Agreement "
            "Problems are Expensive' (PODC 2024)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for experiment_id in ALL_EXPERIMENTS:
        experiment = subparsers.add_parser(
            experiment_id, help=f"run experiment {experiment_id.upper()}"
        )
        if experiment_id in ("e3", "e7"):
            experiment.add_argument(
                "--jobs",
                type=int,
                default=1,
                help=(
                    "worker processes for the sweep matrix (default: "
                    "serial, bit-identical to --jobs 1)"
                ),
            )
            _ledger_option(experiment)
            _progress_options(experiment)
    all_parser = subparsers.add_parser(
        "all", help="run every experiment"
    )
    all_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for sweep-shaped experiments (default: "
            "serial, bit-identical to --jobs 1)"
        ),
    )
    _ledger_option(all_parser)
    _progress_options(all_parser)

    attack = subparsers.add_parser(
        "attack", help="run the lower-bound attack on a protocol"
    )
    attack.add_argument(
        "protocol",
        choices=sorted(CHEATERS) + ["correct", "naive-flooding"],
        help=(
            "which candidate weak consensus to attack "
            "(naive-flooding is incorrect but quadratic: the driver "
            "rightly finds no sub-quadratic violation)"
        ),
    )
    attack.add_argument("--n", type=int, default=16)
    attack.add_argument("--t", type=int, default=8)
    attack.add_argument(
        "--log", action="store_true", help="print the pipeline narrative"
    )
    attack.add_argument(
        "--save",
        metavar="PATH",
        help="write the violation witness (if any) as a JSON evidence file",
    )
    attack.add_argument(
        "--no-check",
        action="store_true",
        help="skip the per-round model validity checker (faster)",
    )
    attack.add_argument(
        "--early-stop",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="halt decision-only simulations at the decision round",
    )
    attack.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print wall-clock phase and per-round timings (to stderr)"
        ),
    )
    attack.add_argument(
        "--kernel",
        choices=("auto", "object", "mask"),
        default="auto",
        help=(
            "round-engine selection: 'auto' runs the bitmask kernel "
            "whenever representable, 'object' forces the per-message "
            "engine, 'mask' requests the kernel (profiling/tracing "
            "still fall back to the object engine); outcomes are "
            "engine-independent"
        ),
    )
    _ledger_option(attack)
    _telemetry_options(attack)

    verify = subparsers.add_parser(
        "verify-witness",
        help="re-verify a saved witness against a protocol's code",
    )
    verify.add_argument("path", help="witness JSON file")
    verify.add_argument(
        "protocol",
        choices=sorted(CHEATERS) + ["correct", "naive-flooding"],
        help="the protocol the witness claims to break",
    )
    verify.add_argument("--n", type=int, default=16)
    verify.add_argument("--t", type=int, default=8)

    certify_parser = subparsers.add_parser(
        "certify",
        help=(
            "run the lower-bound attack and write a portable, "
            "independently verifiable certificate artifact"
        ),
    )
    certify_parser.add_argument(
        "protocol",
        choices=sorted(CHEATERS)
        + ["correct", "naive-flooding", "matrix"],
        help=(
            "which candidate to certify, or 'matrix' for one artifact "
            "per seed cheater-matrix cell"
        ),
    )
    certify_parser.add_argument("--n", type=int, default=16)
    certify_parser.add_argument("--t", type=int, default=8)
    certify_parser.add_argument(
        "--out",
        metavar="PATH",
        help=(
            "artifact file (single protocol) or directory (matrix); "
            "default: <protocol>-n<N>-t<T>.cert.json, or certificates/"
        ),
    )
    certify_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the matrix (default: serial)",
    )

    verify_cert = subparsers.add_parser(
        "verify-cert",
        help=(
            "independently verify saved certificate artifacts "
            "(exit 1 names the first violated condition)"
        ),
    )
    verify_cert.add_argument(
        "paths", nargs="+", help="certificate JSON artifact(s)"
    )
    verify_cert.add_argument(
        "--replay",
        metavar="PROTOCOL",
        choices=sorted(CHEATERS) + ["correct", "naive-flooding"],
        help=(
            "additionally replay every recorded behavior against this "
            "protocol's live code (n, t are read from each artifact)"
        ),
    )

    classify_parser = subparsers.add_parser(
        "classify", help="classify a standard agreement problem"
    )
    classify_parser.add_argument(
        "problem", choices=sorted(_PROBLEMS), help="which problem"
    )
    classify_parser.add_argument("--n", type=int, default=4)
    classify_parser.add_argument("--t", type=int, default=1)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="message-complexity sweep of a protocol vs the t²/32 floor",
    )
    sweep_parser.add_argument(
        "protocol",
        choices=sorted(_SWEEPABLE),
        help="which protocol to measure",
    )
    sweep_parser.add_argument("--max-t", type=int, default=8)
    sweep_parser.add_argument(
        "--grid",
        choices=["slack", "proportional"],
        default="slack",
        help=(
            "slack: n = t + 4 (high resilience); proportional: n = 2t "
            "(shows the quadratic exponent)"
        ),
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep matrix (default: serial, "
            "bit-identical to --jobs 1)"
        ),
    )
    sweep_parser.add_argument(
        "--timings",
        action="store_true",
        help=(
            "also print the per-cell wall-time/accounting table "
            "(to stderr)"
        ),
    )
    sweep_parser.add_argument(
        "--resume",
        metavar="LOG",
        help=(
            "resume an interrupted sweep from its world log: cells "
            "whose terminal record survived are not re-executed, and "
            "the finished run is bit-identical to an uninterrupted one"
        ),
    )
    _ledger_option(sweep_parser)
    _progress_options(sweep_parser)
    _telemetry_options(sweep_parser)

    log_parser = subparsers.add_parser(
        "log",
        help=(
            "operate on append-only world logs: show records, derive "
            "the legacy artifact views, import legacy files, resume "
            "an interrupted sweep, replay/diff/stat past runs"
        ),
    )
    log_sub = log_parser.add_subparsers(dest="log_command", required=True)
    log_show = log_sub.add_parser(
        "show", help="list a world log's records (tick, kind, cell)"
    )
    log_show.add_argument("path", help="world log file")
    log_show.add_argument(
        "--kind",
        action="append",
        metavar="KIND",
        help="show only records of this kind (repeatable)",
    )
    log_show.add_argument(
        "--cell",
        action="append",
        metavar="CELL",
        help="show only records of this cell id (repeatable)",
    )
    log_show.add_argument(
        "--run",
        action="append",
        metavar="RUN",
        help="show only records of this run id (repeatable)",
    )
    log_show.add_argument(
        "--tail",
        type=int,
        default=None,
        metavar="N",
        help="after filtering, show only the last N records",
    )
    log_tail = log_sub.add_parser(
        "tail",
        help=(
            "stream a world log's records as they are appended: one "
            "listing line per complete record, torn tails held back "
            "until their newline lands; --follow keeps polling like "
            "tail -f"
        ),
    )
    log_tail.add_argument("path", help="world log file")
    log_tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep polling for new records until interrupted",
    )
    log_tail.add_argument(
        "--interval",
        default="0.5",
        metavar="SECONDS",
        help="seconds between polls with --follow (default: 0.5)",
    )
    log_tail.add_argument(
        "--max-polls", type=int, default=None, help=argparse.SUPPRESS
    )
    log_derive = log_sub.add_parser(
        "derive",
        help=(
            "re-derive the legacy artifact views (ledger JSONL, "
            "certificates, checkpoints, bench trajectories, trend log) "
            "from a world log"
        ),
    )
    log_derive.add_argument("path", help="world log file")
    log_derive.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="output directory (default: <log>.derived/)",
    )
    log_import = log_sub.add_parser(
        "import",
        help=(
            "one-shot conversion: fold legacy artifacts (event "
            "ledgers, certificates, bench trajectories, trend logs) "
            "into one fresh world log"
        ),
    )
    log_import.add_argument(
        "paths", nargs="+", help="legacy artifact file(s)"
    )
    log_import.add_argument(
        "--out",
        metavar="LOG",
        required=True,
        help="the world log to create",
    )
    log_resume = log_sub.add_parser(
        "resume",
        help=(
            "finish an interrupted sweep from its recorded plan: "
            "already-recorded cells are not re-executed"
        ),
    )
    log_resume.add_argument("path", help="world log file")
    log_resume.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default: serial)",
    )
    _progress_options(log_resume)
    log_replay = log_sub.add_parser(
        "replay",
        help=(
            "time-travel a past run: step record-by-record with a "
            "replay cursor and print what the system knew at tick T"
        ),
    )
    log_replay.add_argument("path", help="world log file")
    log_replay.add_argument(
        "--at",
        type=int,
        default=None,
        metavar="TICK",
        help=(
            "one-shot: print the state after the last record with "
            "tick <= TICK and exit (past-the-end ticks land at the "
            "end); without it, commands are read from stdin "
            "(next/prev [N], seek TICK, state, quit)"
        ),
    )
    log_diff = log_sub.add_parser(
        "diff",
        help=(
            "semantic diff of two logs of the same matrix: key-aligned "
            "by (kind, name, cell), timing-only divergence ignored; "
            "exit 0 when empty, 1 at the first real divergence"
        ),
    )
    log_diff.add_argument("a", help="first world log")
    log_diff.add_argument("b", help="second world log")
    log_stats_parser = log_sub.add_parser(
        "stats",
        help=(
            "post-hoc metrics from an old log (no schema migration): "
            "per-cell percentiles, span totals, cache hit rate, "
            "per-tenant job + rejection counts, as trend-shaped JSON"
        ),
    )
    log_stats_parser.add_argument("path", help="world log file")

    trace_parser = subparsers.add_parser(
        "trace",
        help=(
            "render a persisted run recording (legacy ledger JSONL or "
            "world log, sniffed) as a phase-tree timeline"
        ),
    )
    trace_parser.add_argument(
        "path",
        help="run ledger JSONL file or world log (written via --ledger)",
    )
    trace_parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest rounds to list (default: 5)",
    )
    trace_parser.add_argument(
        "--format",
        choices=("text", "chrome"),
        default="text",
        help=(
            "text: the phase-tree timeline (default); chrome: "
            "trace-event JSON that Perfetto and chrome://tracing open"
        ),
    )

    report_parser = subparsers.add_parser(
        "report",
        help=(
            "append a canary perf point to the trend log and diff it "
            "against the previous one"
        ),
    )
    report_parser.add_argument(
        "--trend",
        action="store_true",
        required=True,
        help="record a trend point (the only report mode, for now)",
    )
    report_parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=(
            "trend store to append to: a legacy trend JSONL, or a "
            "world log ('*.worldlog' or an existing log, sniffed) "
            "(default: benchmarks/reports/trend.jsonl)"
        ),
    )
    report_parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help=(
            "flag wall-clock regressions beyond this fraction "
            "(default: 0.2 = 20%%)"
        ),
    )
    report_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a regression is flagged",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help=(
            "the benchmark observatory: measure registered kernels, "
            "persist per-suite trajectories, compare against baselines"
        ),
    )
    bench_sub = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    bench_run = bench_sub.add_parser(
        "run",
        help=(
            "measure kernels (warmup + timed repetitions + memory "
            "accounting) and append the points to BENCH_<suite>.json"
        ),
    )
    bench_run.add_argument(
        "--suite",
        action="append",
        metavar="SUITE",
        help=(
            "measure only this suite (repeatable; default: every "
            "registered suite)"
        ),
    )
    bench_run.add_argument(
        "--quick",
        action="store_true",
        help=(
            "quick tier: only quick-tier kernels, 3 repetitions "
            "(CI-speed)"
        ),
    )
    bench_run.add_argument(
        "--repetitions",
        type=int,
        default=None,
        metavar="N",
        help="timed repetitions per kernel (default: 3 quick, 7 full)",
    )
    bench_run.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="N",
        help="untimed warmup executions per kernel (default: 1)",
    )
    bench_run.add_argument(
        "--dir",
        default="benchmarks",
        help="directory of bench_*.py kernel modules (default: benchmarks)",
    )
    bench_run.add_argument(
        "--out-dir",
        default=".",
        help=(
            "where BENCH_<suite>.json trajectories accumulate "
            "(default: current directory)"
        ),
    )
    bench_compare = bench_sub.add_parser(
        "compare",
        help=(
            "gate current trajectories against a baseline with the "
            "noise-aware threshold (exit 1 on regression)"
        ),
    )
    bench_compare.add_argument(
        "baseline",
        help=(
            "baseline trajectory: a BENCH_<suite>.json file or a "
            "directory of them"
        ),
    )
    bench_compare.add_argument(
        "current",
        nargs="*",
        help=(
            "current trajectory file(s); default: the BENCH_<suite>"
            ".json in --out-dir matching the baseline's suites"
        ),
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help=(
            "regression gate floor as a fraction; a kernel is flagged "
            "only beyond max(threshold, 3x measured noise) "
            "(default: 0.2 = 20%%)"
        ),
    )
    bench_compare.add_argument(
        "--out-dir",
        default=".",
        help=(
            "where to look for current trajectories when none are "
            "given (default: current directory)"
        ),
    )
    bench_list = bench_sub.add_parser(
        "list", help="list the registered kernels and their tiers"
    )
    bench_list.add_argument(
        "--dir",
        default="benchmarks",
        help="directory of bench_*.py kernel modules (default: benchmarks)",
    )
    bench_list.add_argument(
        "--quick",
        action="store_true",
        help="list only the quick tier",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the attack job server: accept attack/measure/classify "
            "jobs from many clients over a unix socket, record every "
            "accepted job and result in a world log, resume the queue "
            "after a crash"
        ),
    )
    serve_parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help=(
            "unix socket to listen on (keep it short: the OS caps "
            "socket paths around 100 bytes)"
        ),
    )
    serve_parser.add_argument(
        "--log",
        required=True,
        metavar="WORLDLOG",
        help=(
            "the world log backing the queue: created if missing, "
            "resumed (queued and died-mid-run jobs re-queued, finished "
            "jobs answerable) if present"
        ),
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker parallelism: 1 runs jobs in-process (default); "
            "more shards them over a process pool"
        ),
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=16,
        help="per-tenant cap on queued-or-running jobs (default: 16)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=10.0,
        help=(
            "per-tenant sustained accepted submissions per second "
            "(default: 10)"
        ),
    )
    serve_parser.add_argument(
        "--burst",
        type=int,
        default=20,
        help="per-tenant rate-limit burst capacity (default: 20)",
    )
    serve_parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "sample the live status fold into telemetry.snapshot "
            "records in the server's world log (observability-only)"
        ),
    )
    serve_parser.add_argument(
        "--telemetry-interval",
        default=None,
        metavar="SECONDS",
        help=(
            "seconds between telemetry samples (default: 1; "
            "implies --telemetry)"
        ),
    )

    submit_parser = subparsers.add_parser(
        "submit",
        help=(
            "submit one job to a running attack server; identical "
            "re-submissions are answered from the recorded result "
            "without re-running anything"
        ),
    )
    submit_parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the server's unix socket",
    )
    submit_parser.add_argument(
        "kind",
        choices=("attack", "measure", "classify"),
        help="which job kind to run",
    )
    submit_parser.add_argument(
        "name",
        help=(
            "the spec-builder name (attack/measure) or standard "
            "problem name (classify)"
        ),
    )
    submit_parser.add_argument("--n", type=int, required=True)
    submit_parser.add_argument("--t", type=int, required=True)
    submit_parser.add_argument(
        "--certify",
        action="store_true",
        help="attack jobs only: also produce the certificate artifact",
    )
    submit_parser.add_argument(
        "--tenant",
        default="default",
        help="quota accounting identity (default: 'default')",
    )
    submit_parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="bigger runs sooner; ties run first-come-first-served",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help=(
            "stay connected until the job's terminal record and print "
            "its result"
        ),
    )

    jobs_parser = subparsers.add_parser(
        "jobs",
        help=(
            "the job manifest: one line per accepted job key, live "
            "from a running server or offline from its world log"
        ),
    )
    jobs_source = jobs_parser.add_mutually_exclusive_group(
        required=True
    )
    jobs_source.add_argument(
        "--socket",
        metavar="PATH",
        help="ask a running server (live queue states)",
    )
    jobs_source.add_argument(
        "--log",
        metavar="WORLDLOG",
        help="fold a world log's job records offline (no server needed)",
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help=(
            "stream one job's world-log records (replay, then live) "
            "until its terminal record; exit 1 if the job failed"
        ),
    )
    watch_parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the server's unix socket",
    )
    watch_parser.add_argument("key", help="the job's idempotent key")

    status_parser = subparsers.add_parser(
        "status",
        help=(
            "one status frame from a running attack server: queue "
            "depth by priority, per-tenant quota occupancy, worker "
            "utilization, per-job progress"
        ),
    )
    status_parser.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the server's unix socket",
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw status frame as JSON",
    )

    top_parser = subparsers.add_parser(
        "top",
        help=(
            "live dashboard: redraw the server status frame (from a "
            "socket) or a growing world log's fold (from --log) on an "
            "interval; stderr-disciplined like --progress"
        ),
    )
    top_source = top_parser.add_mutually_exclusive_group(required=True)
    top_source.add_argument(
        "--socket",
        metavar="PATH",
        help="a running server's unix socket",
    )
    top_source.add_argument(
        "--log",
        metavar="WORLDLOG",
        help="follow a growing world log instead of a server",
    )
    top_parser.add_argument(
        "--interval",
        default="1",
        metavar="SECONDS",
        help="seconds between redraws (default: 1)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (for scripts and tests)",
    )

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="export recorded metrics in formats other tools ingest",
    )
    metrics_sub = metrics_parser.add_subparsers(
        dest="metrics_command", required=True
    )
    metrics_export = metrics_sub.add_parser(
        "export",
        help=(
            "render a run recording (world log or legacy ledger "
            "JSONL, sniffed) as Prometheus text exposition"
        ),
    )
    metrics_export.add_argument(
        "path", help="world log or run ledger JSONL file"
    )
    metrics_export.add_argument(
        "--format",
        choices=("prom",),
        default="prom",
        help="output format (default: prom)",
    )
    metrics_export.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write to PATH instead of stdout",
    )
    return parser


def _resolve_protocol(name: str, n: int, t: int):
    """Resolve an attack/verify protocol name to a spec."""
    if name == "correct":
        return broadcast_weak_consensus_spec(n, t)
    if name == "naive-flooding":
        from repro.protocols.weak_consensus import naive_flooding_spec

        return naive_flooding_spec(n, t)
    return CHEATERS[name](n, t)


def _make_ledger(path: str | None):
    """The recording pair ``(ledger, worldlog)`` for ``--ledger PATH``.

    The compatibility shim: a ``*.worldlog`` path opens the append-only
    world log and mirrors every ledger event into it write-through (the
    ledger itself is the in-memory view layers already consume); any
    other path keeps the legacy behavior — an in-memory ledger that
    :func:`_write_ledger` persists as JSONL at the end.  Either element
    may be ``None``.
    """
    if not path:
        return None, None
    from repro.obs.ledger import RunLedger

    if path.endswith(".worldlog"):
        from repro.worldlog.store import WorldLog

        worldlog = WorldLog.create(path)
        return RunLedger(sink=worldlog.record_event), worldlog
    return RunLedger(), None


def _make_telemetry(
    args: argparse.Namespace, worldlog, source: str
):
    """The optional :class:`TelemetryBus` behind ``--telemetry``.

    ``--telemetry-interval SECONDS`` implies ``--telemetry``; either
    flag without a ``*.worldlog`` ledger is a domain error (there is
    nowhere to record snapshots).  Returns ``None`` when telemetry was
    not requested.
    """
    interval_arg = getattr(args, "telemetry_interval", None)
    if not getattr(args, "telemetry", False) and interval_arg is None:
        return None
    from repro.obs.telemetry import (
        DEFAULT_INTERVAL,
        TelemetryBus,
        parse_interval,
    )

    interval = (
        parse_interval(interval_arg, "--telemetry-interval")
        if interval_arg is not None
        else DEFAULT_INTERVAL
    )
    if worldlog is None:
        raise ReproError(
            "--telemetry records telemetry.snapshot world-log "
            "records; pass --ledger PATH.worldlog to give it a log"
        )
    return TelemetryBus(worldlog, interval=interval, source=source)


def _write_ledger(ledger, worldlog, path: str | None) -> None:
    """Persist and announce a run recording (diagnostic, so stderr)."""
    if ledger is None or not path:
        return
    if worldlog is not None:
        records = len(worldlog.records)
        worldlog.close()
        _info(
            f"world log written to {path} ({records} records, "
            f"{len(ledger)} events); derive artifacts with "
            f"'repro log derive {path}'"
        )
        return
    ledger.write(path)
    _info(f"run ledger written to {path} ({len(ledger)} events)")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: ``0`` success, ``1`` domain failure (an unexpected
    verdict, a rejected artifact, failed sweep cells, a flagged
    regression under ``--strict``), ``2`` environment failure (a file
    that cannot be read or written).
    """
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (OSError, ArtifactError) as error:
        # Environment failures: unreadable/unwritable files, or files
        # that exist but are not the artifact they claim to be.
        _info(f"error: {error}")
        return 2
    except (ReproError, RuntimeError) as error:
        _info(f"error: {error}")
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command in ALL_EXPERIMENTS:
        runner = ALL_EXPERIMENTS[args.command]
        kwargs = {}
        if getattr(args, "jobs", 1) != 1:
            kwargs["jobs"] = args.jobs
        ledger, worldlog = _make_ledger(getattr(args, "ledger", None))
        if ledger is not None:
            kwargs["ledger"] = ledger
        if hasattr(args, "progress") and _resolve_progress(args):
            kwargs["progress"] = True
            kwargs["stall_after"] = args.stall_after
        print(runner(**kwargs).report)
        _write_ledger(ledger, worldlog, getattr(args, "ledger", None))
        return 0
    if args.command == "all":
        import inspect

        ledger, worldlog = _make_ledger(args.ledger)
        progress = _resolve_progress(args)
        for experiment_id, runner in ALL_EXPERIMENTS.items():
            # Sweep-shaped experiments accept a worker count and a
            # ledger; the rest run as before.
            parameters = inspect.signature(runner).parameters
            kwargs = {}
            if "jobs" in parameters:
                kwargs["jobs"] = args.jobs
            if ledger is not None and "ledger" in parameters:
                kwargs["ledger"] = ledger
            if progress and "progress" in parameters:
                kwargs["progress"] = True
                kwargs["stall_after"] = args.stall_after
            print(runner(**kwargs).report)
            print()
        _write_ledger(ledger, worldlog, args.ledger)
        return 0
    if args.command == "attack":
        from repro.obs.tracer import NULL_TRACER, LedgerTracer

        ledger, worldlog = _make_ledger(args.ledger)
        tracer = (
            LedgerTracer(ledger) if ledger is not None else NULL_TRACER
        )
        telemetry = _make_telemetry(args, worldlog, "attack")
        spec = _resolve_protocol(args.protocol, args.n, args.t)
        outcome = attack_weak_consensus(
            spec,
            check=not args.no_check,
            early_stop=args.early_stop,
            profile=args.profile,
            tracer=tracer,
            worldlog=worldlog,
            telemetry=telemetry,
            kernel=args.kernel,
        )
        if telemetry is not None:
            telemetry.close()
        print(outcome.render(profile=False))
        if outcome.profile is not None:
            _info(outcome.profile.render())
        if args.log:
            _info("\n".join(outcome.log))
        if args.save and outcome.witness is not None:
            from repro.sim.serialization import dump_witness

            with open(args.save, "w") as handle:
                handle.write(dump_witness(outcome.witness))
            _info(f"witness written to {args.save}")
        _write_ledger(ledger, worldlog, args.ledger)
        expected_violation = args.protocol in CHEATERS
        return 0 if outcome.found_violation == expected_violation else 1
    if args.command == "verify-witness":
        from repro.errors import ModelViolation
        from repro.lowerbound.witnesses import verify_witness
        from repro.sim.serialization import load_witness

        spec = _resolve_protocol(args.protocol, args.n, args.t)
        with open(args.path) as handle:
            witness = load_witness(handle.read())
        try:
            verify_witness(witness, spec.factory)
        except ModelViolation as error:
            _info(f"REJECTED: {error}")
            return 1
        print(f"VERIFIED: {witness.summary()}")
        return 0
    if args.command == "certify":
        from repro.certify.verifier import verify_certificate

        if args.protocol == "matrix":
            import os

            from repro.parallel import AttackJob, SweepScheduler

            out_dir = args.out or "certificates"
            os.makedirs(out_dir, exist_ok=True)
            matrix = [
                AttackJob(builder=name, n=t + 4, t=t, certify=True)
                for name in sorted(CHEATERS)
                for t in (8, 16, 24)
            ]
            report = SweepScheduler(jobs=args.jobs).run(matrix)
            report.raise_errors()
            for cell in report.cells:
                assert cell.result is not None
                assert cell.result.certificate is not None
                _, builder, n, t = cell.key
                path = os.path.join(
                    out_dir, f"{builder}-n{n}-t{t}.cert.json"
                )
                with open(path, "wb") as handle:
                    handle.write(cell.result.certificate)
                _info(f"{path}: written (verified in gather)")
            print(
                f"{report.certificates_verified} certificate(s) in "
                f"{out_dir}/, each independently verified"
            )
            return 0
        spec = _resolve_protocol(args.protocol, args.n, args.t)
        outcome = attack_weak_consensus(spec, certify=True)
        certificate = outcome.certificate
        assert certificate is not None
        verdict = verify_certificate(certificate)
        path = args.out or (
            f"{args.protocol}-n{args.n}-t{args.t}.cert.json"
        )
        with open(path, "wb") as handle:
            handle.write(certificate.to_bytes())
        print(outcome.render())
        print(verdict.render())
        _info(f"certificate written to {path}")
        return 0 if verdict.ok else 1
    if args.command == "verify-cert":
        import json

        from repro.certify.verifier import verify_certificate

        failures = 0
        for path in args.paths:
            with open(path, "rb") as handle:
                blob = handle.read()
            factory = None
            if args.replay:
                claim = json.loads(blob.decode("utf-8")).get("claim", {})
                factory = _resolve_protocol(
                    args.replay, claim.get("n", 0), claim.get("t", 0)
                ).factory
            report = verify_certificate(blob, factory=factory)
            print(f"{path}: {report.render()}")
            if not report.ok:
                failures += 1
        return 1 if failures else 0
    if args.command == "classify":
        problem = _PROBLEMS[args.problem](args.n, args.t)
        print(classify(problem).render())
        return 0
    if args.command == "sweep":
        from repro.analysis.complexity import quadratic_parameter_grid
        from repro.analysis.fitting import fit_sweep
        from repro.analysis.tables import render_sweep
        from repro.parallel import MeasureJob, SweepScheduler

        if args.grid == "proportional":
            grid = [
                (2 * t, t) for t in range(2, args.max_t + 1, 2)
            ]
        else:
            grid = quadratic_parameter_grid(args.max_t)
        if args.resume:
            if args.ledger:
                raise ReproError(
                    "--resume names the world log to continue; "
                    "--ledger would open a second recording target"
                )
            from repro.obs.ledger import RunLedger
            from repro.worldlog.store import WorldLog

            worldlog = WorldLog.resume(args.resume)
            ledger = RunLedger(sink=worldlog.record_event)
            target = args.resume
        else:
            ledger, worldlog = _make_ledger(args.ledger)
            target = args.ledger
        telemetry = _make_telemetry(args, worldlog, "sweep")
        report = SweepScheduler(
            jobs=args.jobs,
            ledger=ledger,
            worldlog=worldlog,
            telemetry=telemetry,
            progress=_resolve_progress(args),
            stall_after=args.stall_after,
        ).run(
            MeasureJob(builder=args.protocol, n=n, t=t)
            for n, t in grid
        )
        report.raise_errors()
        if telemetry is not None:
            telemetry.close()
        points = report.values()
        print(render_sweep(points))
        if args.timings:
            _info(report.render())
        _write_ledger(ledger, worldlog, target)
        try:
            print(f"fit: {fit_sweep(points).render()}")
        except ValueError:
            _info("fit: insufficient non-zero samples")
        return 0
    if args.command == "log":
        return _dispatch_log(args)
    if args.command == "trace":
        events = _read_recording_events(args.path)
        if args.format == "chrome":
            import json

            from repro.obs.export import chrome_trace

            print(json.dumps(chrome_trace(list(events))))
            return 0
        from repro.obs.report import render_trace

        print(render_trace(events, slowest=args.slowest))
        return 0
    if args.command == "report":
        import os

        from repro.obs.report import (
            TREND_PATH,
            append_trend,
            trend_delta,
            trend_point,
        )
        from repro.worldlog.store import is_worldlog

        out = args.out or TREND_PATH
        _info("running the trend canary (ring-token, n=12, t=8)...")
        point = trend_point()
        if out.endswith(".worldlog") or is_worldlog(out):
            from repro.worldlog.store import WorldLog
            from repro.worldlog.views import trend_points

            worldlog = (
                WorldLog.resume(out)
                if os.path.exists(out)
                else WorldLog.create(out)
            )
            history = trend_points(worldlog.records)
            previous = history[-1] if history else None
            worldlog.append("trend.point", point)
            worldlog.close()
            delta = trend_delta(point, previous, threshold=args.threshold)
        else:
            delta = append_trend(out, point, threshold=args.threshold)
        print(delta.render())
        _info(f"trend point appended to {out}")
        if args.strict and not delta.ok:
            return 1
        return 0
    if args.command == "bench":
        return _dispatch_bench(args)
    if args.command == "serve":
        return _dispatch_serve(args)
    if args.command == "submit":
        return _dispatch_submit(args)
    if args.command == "jobs":
        return _dispatch_jobs(args)
    if args.command == "watch":
        return _dispatch_watch(args)
    if args.command == "status":
        return _dispatch_status(args)
    if args.command == "top":
        return _dispatch_top(args)
    if args.command == "metrics":
        return _dispatch_metrics(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _read_recording_events(path: str):
    """Ledger events from a run recording: world log or legacy JSONL,
    sniffed the same way ``repro trace`` always has."""
    from repro.worldlog.store import is_worldlog

    if is_worldlog(path):
        from repro.worldlog.store import read_worldlog
        from repro.worldlog.views import ledger_events

        return ledger_events(read_worldlog(path))
    from repro.obs.ledger import read_events

    return read_events(path)


def _dispatch_serve(args: argparse.Namespace) -> int:
    from repro.service.quota import QuotaPolicy
    from repro.service.server import JobServer

    interval = None
    if args.telemetry or args.telemetry_interval is not None:
        from repro.obs.telemetry import DEFAULT_INTERVAL, parse_interval

        interval = (
            parse_interval(
                args.telemetry_interval, "--telemetry-interval"
            )
            if args.telemetry_interval is not None
            else DEFAULT_INTERVAL
        )
    server = JobServer(
        log_path=args.log,
        socket_path=args.socket,
        jobs=args.jobs,
        quota=QuotaPolicy(
            max_pending=args.max_pending,
            rate=args.rate,
            burst=args.burst,
        ),
        telemetry_interval=interval,
    )
    _info(
        f"attack service listening on {args.socket} "
        f"(log: {args.log}, jobs: {args.jobs}); stop with SIGTERM"
    )
    server.serve_forever()
    _info("attack service stopped; queued jobs stay in the log")
    return 0


def _service_job(args: argparse.Namespace):
    """Build the job a ``repro submit`` invocation describes.

    Builder/problem names are validated client-side so a typo fails
    fast with the registry listed, instead of as a queued job's error
    record.
    """
    from repro.parallel.jobs import (
        AttackJob,
        ClassifyJob,
        MeasureJob,
        resolve_builder,
        resolve_problem,
    )

    if args.certify and args.kind != "attack":
        raise ReproError(
            "--certify applies to attack jobs only"
        )
    if args.kind == "classify":
        resolve_problem(args.name)
        return ClassifyJob(builder=args.name, n=args.n, t=args.t)
    resolve_builder(args.name)
    if args.kind == "measure":
        return MeasureJob(builder=args.name, n=args.n, t=args.t)
    return AttackJob(
        builder=args.name, n=args.n, t=args.t, certify=args.certify
    )


def _render_job_value(value) -> str:
    """A terminal job payload as the matching one-off command's output."""
    from repro.analysis.complexity import SweepPoint

    if isinstance(value, SweepPoint):
        from repro.analysis.tables import render_sweep

        return render_sweep([value])
    return value.render()


def _print_terminal(record: dict | None) -> int:
    """Print a streamed terminal record; the job's exit code."""
    if record is None:
        raise ReproError(
            "server stream ended before the job's terminal record"
        )
    payload = record["payload"]
    if record["kind"] == "job.error":
        _info(
            f"job failed ({payload['error_kind']}): "
            f"{payload['message']}"
        )
        return 1
    from repro.worldlog.codec import decode_job_result

    result = decode_job_result(payload["result"])
    print(_render_job_value(result.value))
    if result.certificate is not None:
        _info(
            f"certificate recorded in the log "
            f"({len(result.certificate)} canonical bytes)"
        )
    return 0


def _dispatch_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.worldlog.codec import encode_job

    spec = encode_job(_service_job(args))
    client = ServiceClient(args.socket)
    if not args.wait:
        response = client.submit(
            spec, tenant=args.tenant, priority=args.priority
        )
        cached = " (cached)" if response.get("cached") else ""
        print(f"{response['key']} {response['state']}{cached}")
        return 1 if response["state"] == "failed" else 0
    final = None
    for frame in client.submit_wait(
        spec, tenant=args.tenant, priority=args.priority
    ):
        record = frame.get("record")
        if record is None:
            cached = " (cached)" if frame.get("cached") else ""
            _info(f"{frame['key']} {frame['state']}{cached}")
        elif frame.get("final"):
            final = record
        else:
            _info(f"[{record['tick']}] {record['kind']}")
    return _print_terminal(final)


def _dispatch_jobs(args: argparse.Namespace) -> int:
    if args.socket:
        from repro.service.client import ServiceClient

        manifest = ServiceClient(args.socket).jobs()
    else:
        from repro.worldlog.store import read_worldlog
        from repro.worldlog.views import jobs_manifest

        manifest = jobs_manifest(read_worldlog(args.log))
    entries = manifest["jobs"]
    if not entries:
        print("no jobs recorded")
        return 0
    for entry in entries:
        job = entry["job"]
        cell = (
            f"{job['kind']}/{job['builder']}/n{job['n']}/t{job['t']}"
        )
        line = (
            f"{entry['key']}  {entry['state']:<7} "
            f"p{entry['priority']:<3} {entry['tenant']:<10} {cell}"
        )
        if entry["state"] == "failed":
            line += (
                f"  [{entry.get('error_kind', '?')}] "
                f"{entry.get('message', '')}"
            )
        print(line)
    return 0


def _dispatch_watch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    final = None
    for frame in ServiceClient(args.socket).watch(args.key):
        record = frame.get("record")
        if record is None:
            continue
        if frame.get("final"):
            final = record
        else:
            _info(f"[{record['tick']}] {record['kind']}")
    return _print_terminal(final)


def _record_line(record) -> str:
    """One ``log show``-style listing line for a record."""
    cell = record.cell_id or "-"
    name = record.name or ""
    return f"{record.tick:>6}  {record.kind:<13} {cell:<24} {name}"


def _render_status(body: dict) -> str:
    """The ``repro status`` / ``repro top`` frame for one status fold."""
    workers = body.get("workers", {})
    queue = body.get("queue", {})
    jobs = body.get("jobs", {})
    lines = []
    if body.get("run_id"):
        lines.append(
            f"server run {body['run_id']} "
            f"({body.get('schema', '?')})"
        )
    utilization = workers.get("utilization", 0.0) * 100
    lines.append(
        f"workers   {workers.get('busy', 0)}"
        f"/{workers.get('total', 0)} busy ({utilization:.0f}%)"
    )
    depths = ", ".join(
        f"p{priority}: {count}"
        for priority, count in queue.get("by_priority", {}).items()
    )
    lines.append(
        f"queue     {queue.get('depth', 0)} queued"
        + (f" ({depths})" if depths else "")
    )
    lines.append(
        f"jobs      {jobs.get('queued', 0)} queued, "
        f"{len(jobs.get('running', []))} running, "
        f"{jobs.get('completed', 0)} completed"
    )
    for tenant, entry in sorted(body.get("tenants", {}).items()):
        occupancy = entry.get("quota_occupancy", 0.0) * 100
        lines.append(
            f"tenant    {tenant}: {entry.get('pending', 0)}"
            f"/{entry.get('max_pending', '?')} pending "
            f"({occupancy:.0f}% quota), "
            f"{entry.get('rate_tokens', 0.0):.1f}"
            f"/{entry.get('burst', 0.0):.0f} rate tokens"
        )
    for job in jobs.get("running", []):
        lines.append(
            f"running   {job['key']} {job['tenant']} "
            f"p{job['priority']} {job['seconds']:.1f}s"
        )
    return "\n".join(lines)


class _LogTopFold:
    """The ``repro top --log`` accumulator: a growing log's live view.

    Pure fold over whatever :class:`~repro.worldlog.store.LogTailer`
    has seen so far — record and kind counts, the latest record, and
    the latest ``telemetry.snapshot`` payload when the writer samples
    telemetry.
    """

    def __init__(self) -> None:
        self.records = 0
        self.kinds: dict[str, int] = {}
        self.telemetry: dict | None = None
        self.last = None

    def absorb(self, record) -> None:
        self.records += 1
        self.kinds[record.kind] = self.kinds.get(record.kind, 0) + 1
        if record.kind == "telemetry.snapshot" and isinstance(
            record.payload, dict
        ):
            self.telemetry = record.payload
        self.last = record

    def render(self, path: str) -> str:
        lines = [f"world log {path}: {self.records} record(s)"]
        for kind in sorted(self.kinds):
            lines.append(f"  {kind:<18} {self.kinds[kind]}")
        if self.last is not None:
            lines.append(f"last: {_record_line(self.last).strip()}")
        snapshot = self.telemetry
        if not snapshot:
            return "\n".join(lines)
        lines.append(
            f"telemetry seq {snapshot.get('seq')} "
            f"({snapshot.get('source', '?')}, uptime "
            f"{snapshot.get('uptime_seconds', 0.0):.1f}s)"
        )
        rounds = snapshot.get("rounds")
        if rounds:
            rate = rounds.get("rounds_per_second")
            rate_text = f"{rate:.0f}/s" if rate else "-"
            line = (
                f"rounds    {rounds.get('seen', 0)} seen "
                f"({rate_text}), {rounds.get('cum_messages', 0)} "
                f"correct-sender messages"
            )
            if rounds.get("vs_floor") is not None:
                line += f", {rounds['vs_floor']:.2f}x of t²/32 floor"
            lines.append(line)
        if snapshot.get("cache_hit_rate") is not None:
            lines.append(
                f"cache     "
                f"{snapshot['cache_hit_rate'] * 100:.0f}% hit rate"
            )
        progress = snapshot.get("progress")
        if progress:
            lines.append(
                f"progress  {progress.get('done', 0)}"
                f"/{progress.get('total', 0)} cells, "
                f"{progress.get('in_flight', 0)} in flight"
            )
        service = snapshot.get("service")
        if service:
            lines.append(_render_status(service))
        return "\n".join(lines)


def _dispatch_status(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    frame = ServiceClient(args.socket).status()
    if args.json:
        print(json.dumps(frame, indent=2, sort_keys=True))
        return 0
    print(_render_status(frame))
    return 0


def _dispatch_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.telemetry import parse_interval

    interval = parse_interval(args.interval)
    if args.socket:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.socket)

        def frame() -> str:
            return _render_status(client.status())

    else:
        from repro.worldlog.store import LogTailer

        tailer = LogTailer(args.log)
        fold = _LogTopFold()

        def frame() -> str:
            for record in tailer.poll():
                fold.absorb(record)
            return fold.render(args.log)

    # The dashboard is ephemeral diagnostics, so it follows the
    # --progress stderr discipline: stdout stays clean for results.
    stream = sys.stderr
    live = stream.isatty() and not args.once
    try:
        while True:
            text = frame()
            if live:
                stream.write(f"\x1b[2J\x1b[H{text}\n")
            else:
                stream.write(f"{text}\n")
            stream.flush()
            if args.once:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _dispatch_metrics(args: argparse.Namespace) -> int:
    if args.metrics_command != "export":
        raise AssertionError(
            f"unhandled metrics command {args.metrics_command!r}"
        )
    from repro.obs.export import registry_from_events, render_prometheus

    events = _read_recording_events(args.path)
    document = render_prometheus(
        registry_from_events(events).snapshot()
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(document)
        _info(f"metrics exposition written to {args.out}")
    else:
        sys.stdout.write(document)
    return 0


def _dispatch_log_replay(args: argparse.Namespace) -> int:
    """``repro log replay``: one-shot ``--at TICK`` or stdin-driven."""
    from repro.worldlog.replay import ReplayCursor, render_state
    from repro.worldlog.store import read_worldlog

    records = read_worldlog(args.path)
    cursor = ReplayCursor(records)
    if args.at is not None:
        cursor.seek(args.at)
        print(render_state(cursor.state, total=len(records)))
        return 0
    _info(
        f"world log {args.path}: {len(records)} record(s), run "
        f"{records[0].run_id}; commands: next/prev [N], seek TICK, "
        "state, quit"
    )
    for line in sys.stdin:
        parts = line.split()
        if not parts:
            continue
        command, rest = parts[0], parts[1:]
        try:
            count = int(rest[0]) if rest else 1
        except ValueError:
            _info(f"not a number: {rest[0]!r}")
            continue
        if command in ("next", "n"):
            for _ in range(count):
                record = cursor.next()
                if record is None:
                    _info("(end of log)")
                    break
                print(_record_line(record))
        elif command in ("prev", "p"):
            for _ in range(count):
                record = cursor.prev()
                if record is None:
                    _info("(start of log)")
                    break
                print(_record_line(record))
        elif command == "seek" and rest:
            cursor.seek(count)
            print(
                f"at tick {cursor.state.tick} "
                f"({cursor.position}/{len(records)} records)"
            )
        elif command in ("state", "s"):
            print(render_state(cursor.state, total=len(records)))
        elif command in ("quit", "q"):
            break
        else:
            _info(f"unknown command {command!r}")
    return 0


def _dispatch_log_tail(args: argparse.Namespace) -> int:
    """``repro log tail``: stream complete records as they land."""
    import time

    from repro.obs.telemetry import parse_interval
    from repro.worldlog.store import LogTailer

    interval = parse_interval(args.interval)
    if not args.follow:
        # One shot: a missing file is an environment error, not an
        # empty log (with --follow it may simply not exist yet).
        with open(args.path, "rb"):
            pass
    tailer = LogTailer(args.path)
    polls = 0
    try:
        while True:
            for record in tailer.poll():
                print(_record_line(record), flush=True)
            polls += 1
            if not args.follow:
                return 0
            if args.max_polls is not None and polls >= args.max_polls:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _dispatch_log(args: argparse.Namespace) -> int:
    from repro.worldlog.store import read_worldlog

    if args.log_command == "show":
        from repro.worldlog.replay import select_records

        records = read_worldlog(args.path)
        print(
            f"world log {args.path}: {len(records)} record(s), "
            f"run {records[0].run_id}"
        )
        for record in select_records(
            records,
            kinds=args.kind,
            cells=args.cell,
            runs=args.run,
            tail=args.tail,
        ):
            print(_record_line(record))
        return 0
    if args.log_command == "tail":
        return _dispatch_log_tail(args)
    if args.log_command == "replay":
        return _dispatch_log_replay(args)
    if args.log_command == "diff":
        from repro.worldlog.diffing import diff_logs

        report = diff_logs(
            read_worldlog(args.a), read_worldlog(args.b)
        )
        print(report.render(args.a, args.b))
        return 0 if report.ok else 1
    if args.log_command == "stats":
        import json
        import time

        from repro.worldlog.replay import log_stats

        document = log_stats(read_worldlog(args.path), now=time.time())
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if args.log_command == "derive":
        from repro.worldlog.views import derive_views

        records = read_worldlog(args.path)
        out_dir = args.out or f"{args.path}.derived"
        written = derive_views(records, out_dir)
        total = 0
        for view in sorted(written):
            for path in written[view]:
                _info(f"{view}: {path}")
                total += 1
        print(f"{total} artifact(s) derived into {out_dir}")
        return 0
    if args.log_command == "import":
        from repro.worldlog.legacy import import_legacy

        counts = import_legacy(args.paths, args.out)
        for family in sorted(counts):
            _info(f"{family}: {counts[family]} record(s) imported")
        print(
            f"world log written to {args.out} "
            f"({sum(counts.values())} record(s))"
        )
        return 0
    if args.log_command == "resume":
        from repro.obs.ledger import RunLedger
        from repro.parallel import SweepScheduler
        from repro.worldlog.resume import sweep_plan
        from repro.worldlog.store import WorldLog

        worldlog = WorldLog.resume(args.path)
        jobs = sweep_plan(worldlog.records)
        if jobs is None:
            worldlog.close()
            raise ReproError(
                f"{args.path} records no sweep plan; only sweeps "
                "recorded into a world log can be resumed"
            )
        ledger = RunLedger(sink=worldlog.record_event)
        report = SweepScheduler(
            jobs=args.jobs,
            ledger=ledger,
            worldlog=worldlog,
            progress=_resolve_progress(args),
            stall_after=args.stall_after,
        ).run(jobs)
        print(report.render())
        _write_ledger(ledger, worldlog, args.path)
        return 1 if report.errors() else 0
    raise AssertionError(
        f"unhandled log command {args.log_command!r}"
    )


def _bench_points(path: str) -> list[dict]:
    """Points from one trajectory file or a directory of them."""
    import os

    from repro.obs import bench

    if os.path.isdir(path):
        names = sorted(
            name
            for name in os.listdir(path)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        if not names:
            raise bench.BenchError(
                f"no BENCH_*.json trajectories under {path!r}"
            )
        points: list[dict] = []
        for name in names:
            points.extend(
                bench.read_bench_file(os.path.join(path, name))
            )
        return points
    return bench.read_bench_file(path)


def _dispatch_bench(args: argparse.Namespace) -> int:
    import os

    from repro.obs import bench

    if args.bench_command == "run":
        bench.load_benchmark_modules(args.dir)
        selected = bench.kernels(
            suites=args.suite, quick=args.quick or None
        )
        if not selected:
            raise bench.BenchError(
                "no kernels matched the suite/tier selection"
            )
        tier = "quick" if args.quick else "full"
        repetitions = args.repetitions or (
            bench.QUICK_REPETITIONS
            if args.quick
            else bench.FULL_REPETITIONS
        )
        runner = bench.BenchRunner(
            repetitions=repetitions, warmup=args.warmup, tier=tier
        )
        points = []
        for kernel in selected:
            _info(
                f"measuring {kernel.label} "
                f"({repetitions} repetitions, tier {tier})..."
            )
            points.append(runner.measure(kernel))
        print(bench.render_points(points))
        for path in bench.append_points(args.out_dir, points):
            _info(f"trajectory appended to {path}")
        return 0
    if args.bench_command == "compare":
        baseline = _bench_points(args.baseline)
        if args.current:
            current = [
                point
                for path in args.current
                for point in bench.read_bench_file(path)
            ]
        else:
            suites = sorted({point["suite"] for point in baseline})
            current = []
            for suite in suites:
                path = os.path.join(
                    args.out_dir, bench.trajectory_file_name(suite)
                )
                current.extend(bench.read_bench_file(path))
        report = bench.compare_points(
            baseline, current, threshold=args.threshold
        )
        print(report.render())
        return 0 if report.ok else 1
    if args.bench_command == "list":
        bench.load_benchmark_modules(args.dir)
        for kernel in bench.kernels(quick=args.quick or None):
            tier = "quick" if kernel.quick else "full"
            print(f"{kernel.label} [{tier}]")
        return 0
    raise AssertionError(
        f"unhandled bench command {args.bench_command!r}"
    )


if __name__ == "__main__":
    sys.exit(main())
