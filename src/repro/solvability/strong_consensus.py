"""Theorem 5: strong consensus is authenticated-solvable only if ``n > 2t``.

The paper re-derives this classical bound ([6]) from the general
solvability theorem: with ``n <= 2t`` (binary domain) the configuration
"first ``t`` processes propose 0, the rest 1" contains both an all-zero
and an all-one sub-configuration, whose strong-validity admissible sets
({0} and {1}) are disjoint — so the containment condition fails.

This module reproduces the argument computationally: it sweeps an
``(n, t)`` grid, decides CC for strong consensus at each point, and
exposes the paper's explicit failing configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.solvability.cc import containment_condition
from repro.validity.input_config import InputConfig
from repro.validity.standard import strong_consensus_problem
from repro.types import validate_system_size


@dataclass(frozen=True)
class BoundaryPoint:
    """One grid point of the Theorem-5 sweep.

    Attributes:
        n, t: the system parameters.
        cc_holds: whether strong consensus satisfies CC there.
        expected: the theorem's prediction, ``n > 2t``.
    """

    n: int
    t: int
    cc_holds: bool

    @property
    def expected(self) -> bool:
        return self.n > 2 * self.t

    @property
    def matches_theorem(self) -> bool:
        """Whether measurement and Theorem 5 agree at this point."""
        return self.cc_holds == self.expected


def strong_consensus_cc(n: int, t: int) -> bool:
    """Whether binary strong consensus satisfies CC at ``(n, t)``."""
    return containment_condition(
        strong_consensus_problem(n, t)
    ).holds


def paper_counterexample(n: int, t: int) -> InputConfig:
    """The §5.3 configuration: first ``t`` propose 0, the rest propose 1.

    For ``n = 2t`` it contains the all-zero ``I_t`` configuration on the
    first half and the all-one one on the second half, certifying the CC
    failure.
    """
    validate_system_size(n, t)
    return InputConfig.full(
        n, t, [0] * t + [1] * (n - t)
    )


def counterexample_certificate(n: int, t: int) -> tuple[InputConfig, InputConfig, InputConfig]:
    """The triple ``(c, c_0, c_1)`` of the Theorem-5 proof for ``n <= 2t``.

    Returns the mixed configuration plus the two contained unanimous
    configurations whose admissible sets are disjoint.

    Raises:
        ValueError: when ``n > 2t`` (no counterexample exists — that is
            the theorem).
    """
    if n > 2 * t:
        raise ValueError(
            f"strong consensus satisfies CC for n={n} > 2t={2 * t}; "
            "no counterexample"
        )
    mixed = paper_counterexample(n, t)
    zeros = mixed.restricted_to(range(t))
    ones = mixed.restricted_to(range(t, n))
    return mixed, zeros, ones


def sweep_boundary(
    n_values: list[int], t_values: list[int]
) -> list[BoundaryPoint]:
    """Decide CC across a grid (experiment E6); skips illegal pairs."""
    points: list[BoundaryPoint] = []
    for n in n_values:
        for t in t_values:
            if not 1 <= t < n:
                continue
            points.append(
                BoundaryPoint(n=n, t=t, cc_holds=strong_consensus_cc(n, t))
            )
    return points
