"""The general solvability theorem machinery (§5).

* :mod:`repro.solvability.cc` — the containment condition (Definition 3)
  and Γ construction/verification.
* :mod:`repro.solvability.theorem` — Theorem 4 as a decision procedure.
* :mod:`repro.solvability.strong_consensus` — Theorem 5 (strong consensus
  needs ``n > 2t``) with the paper's explicit counterexample.
"""

from repro.solvability.cc import (
    CCReport,
    GammaFunction,
    containment_condition,
    satisfies_cc,
    verify_gamma,
)
from repro.solvability.strong_consensus import (
    BoundaryPoint,
    counterexample_certificate,
    paper_counterexample,
    strong_consensus_cc,
    sweep_boundary,
)
from repro.solvability.theorem import (
    SolvabilityReport,
    classify,
    classify_many,
)

__all__ = [
    "BoundaryPoint",
    "CCReport",
    "GammaFunction",
    "SolvabilityReport",
    "classify",
    "classify_many",
    "containment_condition",
    "counterexample_certificate",
    "paper_counterexample",
    "satisfies_cc",
    "strong_consensus_cc",
    "sweep_boundary",
    "verify_gamma",
]
