"""The general solvability theorem (Theorem 4, §5.2) as a decision procedure.

A non-trivial Byzantine agreement problem ``P`` is:

* **authenticated-solvable** iff ``P`` satisfies the containment condition;
* **unauthenticated-solvable** iff ``P`` satisfies CC **and** ``n > 3t``.

The three ingredient results are all mechanized in this library:

* *Necessity of CC* (Lemma 8) — a consequence of Lemma 7, exercised by the
  execution-level tests: every decision a solvable algorithm reaches lies
  in the containment intersection.
* *Sufficiency of CC* (Lemma 9) — constructive: Algorithm 2
  (:mod:`repro.reductions.any_from_ic`) actually solves any CC problem on
  top of interactive consistency, which the test-suite runs under
  Byzantine faults.
* *Unauthenticated triviality for n ≤ 3t* (Lemma 10) — via the Algorithm-1
  reduction and the classic ``n > 3t`` impossibility [55].

Trivial problems are always solvable with zero messages; the classifier
reports them separately rather than through the theorem's branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.solvability.cc import CCReport, containment_condition
from repro.validity.property import AgreementProblem
from repro.validity.triviality import TrivialityReport, triviality_report


@dataclass(frozen=True)
class SolvabilityReport:
    """The full classification of one agreement problem.

    Attributes:
        problem_name: the analysed problem.
        n, t: system parameters (encoded in the validity property, §4.1).
        triviality: the triviality analysis.
        cc: the containment-condition analysis.
        authenticated_solvable: Theorem 4, first branch (non-trivial
            problems) — or trivially ``True`` for trivial problems.
        unauthenticated_solvable: Theorem 4, second branch.
    """

    problem_name: str
    n: int
    t: int
    triviality: TrivialityReport
    cc: CCReport

    @property
    def trivial(self) -> bool:
        """Whether the problem admits the zero-message constant solution."""
        return self.triviality.trivial

    @property
    def authenticated_solvable(self) -> bool:
        """Theorem 4: non-trivial problems need CC; trivial ones are free."""
        return self.trivial or self.cc.holds

    @property
    def unauthenticated_solvable(self) -> bool:
        """Theorem 4: additionally requires ``n > 3t`` (Lemma 10)."""
        if self.trivial:
            return True
        return self.cc.holds and self.n > 3 * self.t

    def render(self) -> str:
        """One line for the E5 classification table."""
        return (
            f"{self.problem_name:<34} n={self.n} t={self.t} "
            f"trivial={'Y' if self.trivial else 'N'} "
            f"CC={'Y' if self.cc.holds else 'N'} "
            f"auth={'Y' if self.authenticated_solvable else 'N'} "
            f"unauth={'Y' if self.unauthenticated_solvable else 'N'}"
        )


def classify(problem: AgreementProblem) -> SolvabilityReport:
    """Run the full Theorem-4 classification on ``problem``."""
    return SolvabilityReport(
        problem_name=problem.name,
        n=problem.n,
        t=problem.t,
        triviality=triviality_report(problem),
        cc=containment_condition(problem),
    )


def classify_many(
    problems: list[AgreementProblem],
) -> list[SolvabilityReport]:
    """Classify a batch (the E5 sweep)."""
    return [classify(problem) for problem in problems]
