"""The containment condition and the Γ function (Definition 3, §5.2).

A non-trivial agreement problem satisfies the *containment condition* (CC)
iff there is a computable ``Γ : I → V_O`` with

    ``Γ(c) ∈ ∩_{c' ∈ Cnt(c)} val(c')``  for every ``c ∈ I``.

For the finite instances this library analyses, CC is decidable by direct
computation of the Lemma-7 intersection at every configuration;
:func:`containment_condition` returns the full per-configuration analysis
and, when CC holds, a concrete Γ (as a dictionary) that the Algorithm-2
reduction then *executes* on top of interactive consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import UnsolvableProblemError
from repro.validity.containment import admissible_under_containment
from repro.validity.input_config import InputConfig
from repro.validity.property import AgreementProblem
from repro.types import Payload


@dataclass(frozen=True)
class CCReport:
    """Full containment-condition analysis of one problem.

    Attributes:
        problem_name: the analysed problem.
        holds: whether CC is satisfied.
        gamma: when CC holds, a concrete Γ over the enumerated ``I``
            (deterministic representative of each intersection).
        admissible_sets: the Lemma-7 intersection at every configuration.
        failures: configurations whose intersection is empty (non-empty
            exactly when CC fails).
    """

    problem_name: str
    holds: bool
    gamma: Mapping[InputConfig, Payload] = field(default_factory=dict)
    admissible_sets: Mapping[InputConfig, frozenset[Payload]] = field(
        default_factory=dict, repr=False
    )
    failures: tuple[InputConfig, ...] = ()

    def gamma_fn(self) -> "GammaFunction":
        """The Γ as a callable total on the enumerated ``I``.

        Raises:
            UnsolvableProblemError: if CC does not hold.
        """
        if not self.holds:
            raise UnsolvableProblemError(
                f"{self.problem_name} fails the containment condition; "
                f"first failing configuration: {self.failures[0]!r}"
            )
        return GammaFunction(dict(self.gamma))


@dataclass(frozen=True)
class GammaFunction:
    """A concrete Γ: table-backed, total on the enumerated ``I``."""

    table: Mapping[InputConfig, Payload]

    def __call__(self, config: InputConfig) -> Payload:
        try:
            return self.table[config]
        except KeyError as error:
            raise KeyError(
                f"Γ is not defined for {config!r} (outside the enumerated "
                "configuration set — check n, t and the value domain)"
            ) from error


def containment_condition(problem: AgreementProblem) -> CCReport:
    """Decide CC for ``problem`` and construct Γ when it holds.

    The deterministic representative picked for each configuration is the
    ``repr``-least admissible value; any choice function works (Definition
    3 only asks for existence), but determinism keeps executions
    reproducible.
    """
    gamma: dict[InputConfig, Payload] = {}
    sets: dict[InputConfig, frozenset[Payload]] = {}
    failures: list[InputConfig] = []
    for config in problem.input_configs():
        admissible = admissible_under_containment(problem, config)
        sets[config] = admissible
        if admissible:
            gamma[config] = min(admissible, key=repr)
        else:
            failures.append(config)
    holds = not failures
    return CCReport(
        problem_name=problem.name,
        holds=holds,
        gamma=gamma if holds else {},
        admissible_sets=sets,
        failures=tuple(failures),
    )


def satisfies_cc(problem: AgreementProblem) -> bool:
    """Shorthand: whether the containment condition holds."""
    return containment_condition(problem).holds


def verify_gamma(
    problem: AgreementProblem,
    gamma: Mapping[InputConfig, Payload] | GammaFunction,
) -> list[str]:
    """Check a claimed Γ against Definition 3; return violations.

    Used by property-based tests: a Γ is valid iff for every enumerated
    ``c``, ``Γ(c)`` is admissible under every configuration ``c``
    contains.
    """
    lookup = (
        gamma.table if isinstance(gamma, GammaFunction) else gamma
    )
    violations: list[str] = []
    for config in problem.input_configs():
        if config not in lookup:
            violations.append(f"Γ undefined at {config!r}")
            continue
        value = lookup[config]
        for contained in config.containment_set():
            if value not in problem.admissible(contained):
                violations.append(
                    f"Γ({config!r}) = {value!r} inadmissible for "
                    f"contained {contained!r}"
                )
    return violations
