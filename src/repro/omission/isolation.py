"""Group isolation (Definition 1, Figure 1).

A group ``G ⊊ Π`` of at most ``t`` processes is *isolated from round k* in
an execution iff every ``p ∈ G``:

* is faulty;
* send-omits nothing;
* receive-omits a message ``m`` iff ``m``'s sender is outside ``G`` and
  ``m`` travels in a round ``>= k``.

:class:`IsolationAdversary` realizes the strategy (possibly for several
disjoint groups at once, as the merged executions of §3 require), and
:func:`check_isolated` verifies the *iff* of Definition 1 on a recorded
execution.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import AdversaryError, ModelViolation
from repro.sim.adversary import Adversary
from repro.sim.execution import Execution
from repro.sim.message import Message
from repro.types import ProcessId, Round


class IsolationAdversary(Adversary):
    """Omission adversary isolating one or more disjoint groups.

    Args:
        isolations: mapping from each group (any iterable of ids) to the
            round from which it is isolated.  Groups must be disjoint; all
            their members become corrupted.

    The strategy commits no send-omissions and receive-omits exactly the
    messages Definition 1 prescribes, so a simulated run under this
    adversary satisfies ``check_isolated`` by construction (asserted in the
    test-suite).
    """

    def __init__(
        self,
        isolations: Mapping[Iterable[ProcessId] | frozenset[ProcessId], Round],
    ) -> None:
        groups: dict[frozenset[ProcessId], Round] = {}
        for group, from_round in isolations.items():
            frozen = frozenset(group)
            if not frozen:
                raise AdversaryError("cannot isolate an empty group")
            if from_round < 1:
                raise AdversaryError(
                    f"isolation round must be >= 1, got {from_round}"
                )
            groups[frozen] = from_round
        members: list[ProcessId] = []
        for group in groups:
            members.extend(group)
        if len(members) != len(set(members)):
            raise AdversaryError("isolated groups must be disjoint")
        super().__init__(members)
        self._groups = groups

    @property
    def isolations(self) -> dict[frozenset[ProcessId], Round]:
        """The isolated groups and their isolation rounds."""
        return dict(self._groups)

    def receive_omits(self, message: Message) -> bool:
        for group, from_round in self._groups.items():
            if (
                message.receiver in group
                and message.sender not in group
                and message.round >= from_round
            ):
                return True
        return False


def isolate_group(
    group: Iterable[ProcessId], from_round: Round
) -> IsolationAdversary:
    """Shorthand for isolating a single group (the paper's ``E_b^{G(k)}``)."""
    return IsolationAdversary({frozenset(group): from_round})


def check_isolated(
    execution: Execution,
    group: Iterable[ProcessId],
    from_round: Round,
) -> None:
    """Verify Definition 1 for ``group`` in a recorded execution.

    Raises:
        ModelViolation: if any clause of Definition 1 fails — the group is
            not within the faulty set, a member send-omits, a member
            receive-omits a message it should receive, or fails to
            receive-omit a message it should drop.
    """
    members = frozenset(group)
    if not members:
        raise ModelViolation("empty group cannot be isolated")
    if len(members) > execution.t:
        raise ModelViolation(
            f"group of {len(members)} exceeds t={execution.t}"
        )
    if members == frozenset(range(execution.n)):
        raise ModelViolation("an isolated group must be a proper subset")
    if not members <= execution.faulty:
        raise ModelViolation(
            f"isolated group {sorted(members)} not within faulty set "
            f"{sorted(execution.faulty)}"
        )
    for pid in sorted(members):
        behavior = execution.behavior(pid)
        if behavior.all_send_omitted():
            raise ModelViolation(
                f"p{pid} send-omits despite isolation (Definition 1)"
            )
        for round_ in range(1, behavior.rounds + 1):
            fragment = behavior.fragment(round_)
            for message in fragment.received:
                if (
                    message.sender not in members
                    and message.round >= from_round
                ):
                    raise ModelViolation(
                        f"p{pid} received {message} which isolation from "
                        f"round {from_round} requires dropping"
                    )
            for message in fragment.receive_omitted:
                if message.sender in members:
                    raise ModelViolation(
                        f"p{pid} receive-omitted in-group message {message}"
                    )
                if message.round < from_round:
                    raise ModelViolation(
                        f"p{pid} receive-omitted {message} before the "
                        f"isolation round {from_round}"
                    )


def quiescent_toward(
    execution: Execution,
    group: Iterable[ProcessId],
    lo: Round,
    hi: Round,
) -> bool:
    """No message from outside ``group`` targets ``group`` in rounds [lo, hi).

    This is the reuse condition behind the driver's execution cache: if
    ``execution`` is ``E_b^{G(lo)}`` (the group isolated from round
    ``lo``) and no outside message is addressed to the group in rounds
    ``lo .. hi-1``, then ``E_b^{G(hi)}`` *is* the same execution.  The
    inductive argument: both evolve identically before round ``lo``;
    within ``[lo, hi)`` the isolation drops nothing (there is nothing to
    drop), so every process's state matches the later-isolation run; and
    from round ``hi`` on both drop exactly the outside→group messages.
    Deterministic machines make the equality literal, fragment for
    fragment, so one simulation can serve the whole quiescent span of a
    critical-round scan (§3, Lemma 4).
    """
    members = frozenset(group)
    for pid in sorted(members):
        behavior = execution.behavior(pid)
        for round_ in range(lo, min(hi, behavior.rounds + 1)):
            fragment = behavior.fragment(round_)
            for message in fragment.received | fragment.receive_omitted:
                if message.sender not in members:
                    return False
    return True


def is_isolated(
    execution: Execution,
    group: Iterable[ProcessId],
    from_round: Round,
) -> bool:
    """Predicate form of :func:`check_isolated`."""
    try:
        check_isolated(execution, group, from_round)
    except ModelViolation:
        return False
    return True
