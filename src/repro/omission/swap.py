"""The ``swap_omission`` procedure (Algorithm 4) and Lemma 15.

``swap_omission(E, p_i)`` builds an execution ``E'`` in which every message
``p_i`` receive-omitted in ``E`` is instead *send-omitted by its sender*.
Nobody's observations change (received sets are untouched), so ``E'`` is
indistinguishable from ``E`` to every process — but the blame moves:
``p_i`` becomes correct, while the senders whose messages were dropped
become faulty.  This is the step that turns "a faulty process disagreed"
into "a *correct* process disagreed", completing the Lemma-2 contradiction.

The module provides the raw transformation (:func:`swap_omission`) and a
checked wrapper (:func:`swap_omission_checked`) asserting every conclusion
of Lemma 15 on the concrete instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelViolation
from repro.omission.indistinguishability import indistinguishable_to_all
from repro.sim.execution import Execution, check_execution
from repro.sim.message import Message
from repro.sim.state import Behavior, Fragment
from repro.types import ProcessId


def swap_omission(execution: Execution, pid: ProcessId) -> Execution:
    """Algorithm 4: re-attribute ``pid``'s receive-omissions to the senders.

    For every process ``p_z`` and round ``j``:

    * messages of ``p_z`` that ``pid`` receive-omitted move from
      ``sent`` to ``send_omitted`` (line 9);
    * ``pid``'s receive-omitted set is emptied of those messages
      (``M^{RO(j)} \\ M``, line 9);
    * the new faulty set contains exactly the processes that still commit
      an omission fault afterwards (lines 10-11).

    The result's faulty set may exceed ``t`` if the preconditions of
    Lemma 15 do not hold; use :func:`swap_omission_checked` to enforce
    them.
    """
    dropped: frozenset[Message] = execution.behavior(
        pid
    ).all_receive_omitted()
    new_faulty: set[ProcessId] = set()
    new_behaviors: list[Behavior] = []
    for pz in range(execution.n):
        behavior = execution.behavior(pz)
        fragments: list[Fragment] = []
        commits_fault = False
        for fragment in behavior:
            sent_z = frozenset(
                message
                for message in dropped
                if message.round == fragment.round
                and message.sender == pz
            )
            new_fragment = fragment.replacing(
                sent=fragment.sent - sent_z,
                send_omitted=fragment.send_omitted | sent_z,
                receive_omitted=fragment.receive_omitted - dropped,
            )
            if new_fragment.commits_fault:
                commits_fault = True
            fragments.append(new_fragment)
        if commits_fault:
            new_faulty.add(pz)
        new_behaviors.append(
            Behavior(tuple(fragments), final_state=behavior.final_state)
        )
    return Execution(
        n=execution.n,
        t=execution.t,
        faulty=frozenset(new_faulty),
        behaviors=tuple(new_behaviors),
    )


@dataclass(frozen=True)
class SwapResult:
    """Outcome of a checked swap: the new execution and what Lemma 15 says.

    Attributes:
        execution: the transformed execution ``E'``.
        now_correct: the focal process, correct in ``E'``.
        newly_faulty: senders blamed for the former receive-omissions.
    """

    execution: Execution
    now_correct: ProcessId
    newly_faulty: frozenset[ProcessId]


def swap_omission_checked(
    execution: Execution,
    pid: ProcessId,
    witness_correct: ProcessId | None = None,
) -> SwapResult:
    """Run Algorithm 4 and machine-check every clause of Lemma 15.

    Preconditions checked (the lemma's hypotheses):

    * ``pid`` commits no send-omission faults in ``execution``;
    * the resulting faulty set fits the budget ``t``.

    Conclusions checked (the lemma's statements 1-4):

    1. the result is a valid execution (all A.1.6 guarantees);
    2. the result is indistinguishable from ``execution`` to every process;
    3. ``pid`` is correct in the result;
    4. ``witness_correct`` (if given) remains correct in the result.

    Raises:
        ModelViolation: if any hypothesis or conclusion fails — meaning
            either misuse, or (if hypotheses held) a bug falsifying the
            lemma on this instance.
    """
    original_behavior = execution.behavior(pid)
    if original_behavior.all_send_omitted():
        raise ModelViolation(
            f"Lemma 15 precondition: p{pid} must not send-omit"
        )
    swapped = swap_omission(execution, pid)
    if len(swapped.faulty) > execution.t:
        raise ModelViolation(
            f"Lemma 15 precondition: swapped faulty set "
            f"{sorted(swapped.faulty)} exceeds t={execution.t}"
        )
    check_execution(swapped)  # conclusion 1
    if not indistinguishable_to_all(execution, swapped):  # conclusion 2
        raise ModelViolation(
            "swap_omission changed some process's observations"
        )
    if pid in swapped.faulty:  # conclusion 3
        raise ModelViolation(f"p{pid} still faulty after swap")
    if (
        witness_correct is not None
        and witness_correct in swapped.faulty
    ):  # conclusion 4
        raise ModelViolation(
            f"witness p{witness_correct} became faulty after swap"
        )
    return SwapResult(
        execution=swapped,
        now_correct=pid,
        newly_faulty=swapped.faulty - execution.faulty,
    )


def blamed_senders(
    execution: Execution, pid: ProcessId
) -> frozenset[ProcessId]:
    """The paper's set ``S``: senders of messages ``pid`` receive-omits.

    These are the processes the swap will blame; Lemma 2 bounds
    ``|S ∩ X| < t/2`` via the counting argument on ``M_{X→p}``.
    """
    return frozenset(
        message.sender
        for message in execution.behavior(pid).all_receive_omitted()
    )
