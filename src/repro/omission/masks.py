"""Compiling omission adversaries to AND-masks (the kernel front-end).

The bitmask kernel (:mod:`repro.sim.kernel`) can only execute
adversaries whose omission pattern is *static and receiver-local*: a
per-receiver threshold round after which only an allowed-sender set gets
through, and no send-omissions at all.  That is exactly the shape of the
two adversaries the lower-bound driver uses — the no-fault adversary and
Definition-1 group isolation — so those compile; anything richer (method
overrides, scheduled omissions, Byzantine substitution) returns ``None``
and the caller falls back to the object engine.

Compilation is deliberately *nominal*: only the exact classes
:class:`~repro.sim.adversary.Adversary` (``NoFaults`` is an alias of it)
and :class:`~repro.omission.isolation.IsolationAdversary` are accepted,
because a subclass may override any behavior hook and silently mean
something else.  An unknown adversary is never guessed at.
"""

from __future__ import annotations

from repro.omission.isolation import IsolationAdversary
from repro.sim.adversary import Adversary
from repro.sim.kernel import CompiledOmissions, group_mask
from repro.types import Round


def compile_omissions(
    adversary: Adversary | None, n: int
) -> CompiledOmissions | None:
    """Compile ``adversary`` to AND-masks, or ``None`` if not possible.

    ``None`` as the adversary means no faults (matching the driver's
    convention of passing ``NoFaults()``).

    For an :class:`IsolationAdversary`, each member of an isolated group
    receives, from its group's isolation round on, only from fellow
    members — receivers outside every group are never restricted, and no
    sender is ever send-omitted, mirroring
    :meth:`IsolationAdversary.receive_omits` exactly.
    """
    if adversary is None:
        adversary = Adversary()
    if type(adversary) is Adversary:
        return CompiledOmissions(
            n=n,
            corrupted=adversary.corrupted,
            thresholds=(None,) * n,
            restricted=((1 << n) - 1,) * n,
        )
    if type(adversary) is IsolationAdversary:
        full = (1 << n) - 1
        thresholds: list[Round | None] = [None] * n
        restricted: list[int] = [full] * n
        for group, from_round in adversary.isolations.items():
            mask = group_mask(group)
            for pid in group:
                thresholds[pid] = from_round
                restricted[pid] = mask
        return CompiledOmissions(
            n=n,
            corrupted=adversary.corrupted,
            thresholds=tuple(thresholds),
            restricted=tuple(restricted),
        )
    return None
