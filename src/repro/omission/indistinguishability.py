"""Indistinguishability of executions (§3) and divergence analysis (Fig. 1).

Two executions are indistinguishable *to a process* iff the process has the
same proposal and receives identical messages in every round of both.  The
process's own omissions are invisible to it, so they do not enter the
definition — this is the pivot of every construction in the paper.

:func:`divergence_profile` reconstructs the Figure-1 colour bands: given a
reference execution and an isolated variant, it reports, per process, the
first round in which the process's *outgoing* behaviour deviates.  For a
group ``G`` isolated at round ``R`` the paper's picture is: ``G`` deviates
from round ``R+1`` (it stopped hearing the outside at ``R``) and the rest
deviates from round ``R+2`` (one propagation step later) at the earliest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim.execution import Execution
from repro.sim.state import behaviors_indistinguishable
from repro.types import ProcessId, Round


def indistinguishable_to(
    left: Execution, right: Execution, pid: ProcessId
) -> bool:
    """Whether ``pid`` cannot tell ``left`` from ``right`` (§3)."""
    return behaviors_indistinguishable(
        left.behavior(pid), right.behavior(pid)
    )


def indistinguishable_to_all(left: Execution, right: Execution) -> bool:
    """Whether *no* process can tell the executions apart.

    This is the Lemma-15 guarantee for ``swap_omission``: the surgery
    re-attributes omissions without changing what anyone observes.
    """
    if left.n != right.n:
        return False
    return all(
        indistinguishable_to(left, right, pid) for pid in range(left.n)
    )


def first_distinguishing_round(
    left: Execution, right: Execution, pid: ProcessId
) -> Round | None:
    """The first round whose received set differs for ``pid``, or ``None``.

    ``None`` means the executions are indistinguishable to ``pid`` over the
    common horizon (a differing proposal is reported as round 0 — the
    process can tell before any communication).
    """
    left_behavior = left.behavior(pid)
    right_behavior = right.behavior(pid)
    if left_behavior.proposal != right_behavior.proposal:
        return 0
    horizon = min(left_behavior.rounds, right_behavior.rounds)
    for round_ in range(1, horizon + 1):
        if left_behavior.received(round_) != right_behavior.received(
            round_
        ):
            return round_
    return None


def first_send_divergence(
    left: Execution, right: Execution, pid: ProcessId
) -> Round | None:
    """The first round where ``pid``'s *attempted sends* differ, or ``None``.

    Compares ``sent ∪ send_omitted`` (the algorithm's output, which the
    adversary cannot forge in the omission model), so this tracks genuine
    state divergence rather than adversarial dropping.
    """
    left_behavior = left.behavior(pid)
    right_behavior = right.behavior(pid)
    horizon = min(left_behavior.rounds, right_behavior.rounds)
    for round_ in range(1, horizon + 1):
        left_out = left_behavior.fragment(round_).all_outgoing
        right_out = right_behavior.fragment(round_).all_outgoing
        if left_out != right_out:
            return round_
    return None


@dataclass(frozen=True)
class DivergenceProfile:
    """Per-process first-divergence rounds between two executions (Fig. 1).

    Attributes:
        receive_divergence: first round each process *observes* a
            difference (``None``: never).
        send_divergence: first round each process *acts* differently.
    """

    receive_divergence: Mapping[ProcessId, Round | None]
    send_divergence: Mapping[ProcessId, Round | None]

    def earliest_send_divergence(
        self, group: frozenset[ProcessId] | set[ProcessId]
    ) -> Round | None:
        """The earliest send-divergence round among ``group``."""
        rounds = [
            self.send_divergence[pid]
            for pid in group
            if self.send_divergence[pid] is not None
        ]
        return min(rounds) if rounds else None


@dataclass(frozen=True)
class ExecutionDiff:
    """One point of difference between two executions.

    Attributes:
        pid: the process whose records differ.
        round: the 1-based round (0 = proposal, horizon+1 = final state).
        field: which record differs (``proposal``, ``sent``,
            ``send_omitted``, ``received``, ``receive_omitted``,
            ``decision``).
    """

    pid: ProcessId
    round: Round
    field: str


def diff_executions(
    left: Execution, right: Execution, *, limit: int = 100
) -> list[ExecutionDiff]:
    """Enumerate where two same-shape executions differ (debug aid).

    Complements the boolean indistinguishability predicates: when a swap
    or merge result surprises you, the diff pinpoints the first records
    that changed.  Comparison covers proposals, all four per-round
    message sets, and final decisions; stops after ``limit`` entries.

    Raises:
        ValueError: if the executions have different (n, rounds) shapes.
    """
    if left.n != right.n or left.rounds != right.rounds:
        raise ValueError(
            "diff requires executions of identical shape "
            f"(n: {left.n} vs {right.n}, rounds: {left.rounds} vs "
            f"{right.rounds})"
        )
    diffs: list[ExecutionDiff] = []

    def note(pid: ProcessId, round_: Round, field: str) -> bool:
        diffs.append(ExecutionDiff(pid=pid, round=round_, field=field))
        return len(diffs) >= limit

    for pid in range(left.n):
        a, b = left.behavior(pid), right.behavior(pid)
        if a.proposal != b.proposal and note(pid, 0, "proposal"):
            return diffs
        for round_ in range(1, left.rounds + 1):
            fa, fb = a.fragment(round_), b.fragment(round_)
            for field in (
                "sent",
                "send_omitted",
                "received",
                "receive_omitted",
            ):
                if getattr(fa, field) != getattr(fb, field):
                    if note(pid, round_, field):
                        return diffs
        if a.decision != b.decision and note(
            pid, left.rounds + 1, "decision"
        ):
            return diffs
    return diffs


def divergence_profile(
    reference: Execution, variant: Execution
) -> DivergenceProfile:
    """Compute Figure-1 style divergence bands between two executions."""
    if reference.n != variant.n:
        raise ValueError("executions have different system sizes")
    return DivergenceProfile(
        receive_divergence={
            pid: first_distinguishing_round(reference, variant, pid)
            for pid in range(reference.n)
        },
        send_divergence={
            pid: first_send_divergence(reference, variant, pid)
            for pid in range(reference.n)
        },
    )
