"""Omission-model proof constructions (§3, Appendix A.2).

* :mod:`repro.omission.isolation` — Definition 1 (group isolation) as an
  adversary strategy plus a recorded-execution verifier.
* :mod:`repro.omission.indistinguishability` — the §3 indistinguishability
  relation and Figure-1 divergence profiling.
* :mod:`repro.omission.swap` — Algorithm 4 (``swap_omission``) with the
  Lemma-15 checks.
* :mod:`repro.omission.merge` — Algorithm 5 (``merge``) with Definition 2
  (mergeability) and the Lemma-16 checks.
* :mod:`repro.omission.masks` — compilation of the static omission
  adversaries above to the bitmask kernel's AND-mask form.
"""

from repro.omission.indistinguishability import (
    DivergenceProfile,
    ExecutionDiff,
    diff_executions,
    divergence_profile,
    first_distinguishing_round,
    first_send_divergence,
    indistinguishable_to,
    indistinguishable_to_all,
)
from repro.omission.isolation import (
    IsolationAdversary,
    check_isolated,
    is_isolated,
    isolate_group,
    quiescent_toward,
)
from repro.omission.masks import compile_omissions
from repro.omission.merge import (
    MergeSpec,
    check_merge_inputs,
    check_merge_result,
    is_mergeable,
    merge,
    uniform_proposal,
)
from repro.omission.swap import (
    SwapResult,
    blamed_senders,
    swap_omission,
    swap_omission_checked,
)

__all__ = [
    "DivergenceProfile",
    "ExecutionDiff",
    "IsolationAdversary",
    "diff_executions",
    "MergeSpec",
    "SwapResult",
    "blamed_senders",
    "check_isolated",
    "check_merge_inputs",
    "check_merge_result",
    "compile_omissions",
    "divergence_profile",
    "first_distinguishing_round",
    "first_send_divergence",
    "indistinguishable_to",
    "indistinguishable_to_all",
    "is_isolated",
    "is_mergeable",
    "isolate_group",
    "merge",
    "quiescent_toward",
    "swap_omission",
    "swap_omission_checked",
    "uniform_proposal",
]
