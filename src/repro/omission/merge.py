"""The ``merge`` procedure (Algorithm 5, Lemma 16, Figure 2).

Given two *mergeable* executions (Definition 2)

* ``E_0^{B(k_B)}`` — all processes propose 0, group ``B`` isolated from
  round ``k_B``;
* ``E_b^{C(k_C)}`` — all processes propose ``b``, group ``C`` isolated from
  round ``k_C``;

``merge`` builds a single execution in which *both* groups are isolated
(at their respective rounds), group ``A = Π \\ (B ∪ C)`` runs live and
correct, and every member of ``B`` (resp. ``C``) observes exactly what it
observed in its original execution — hence decides the same.  This is the
splice that forces group ``A`` into the Lemma-3/Lemma-5 contradiction.

Mergeability (Definition 2): ``k_B = k_C = 1``, or ``|k_B - k_C| <= 1`` and
``b = 0``.

Implementation note: Algorithm 5 recomputes every process through the
transition function (its line 18 applies 𝒜 to *all* processes), feeding
group A the full ``to_i`` and groups B/C their *recorded* received sets.
Determinism makes the recomputed B/C behaviour coincide with the records;
we assert that coincidence (``strict_replay``) instead of trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelViolation
from repro.omission.isolation import check_isolated
from repro.sim.execution import Execution, check_execution
from repro.sim.message import Message
from repro.sim.process import Process, ProcessFactory
from repro.sim.state import Behavior, Fragment, behaviors_indistinguishable
from repro.types import Payload, ProcessId, Round


@dataclass(frozen=True)
class MergeSpec:
    """The parameters of a merge: the two groups and isolation rounds.

    Attributes:
        group_b: the paper's group ``B`` (isolated in the first execution).
        group_c: the paper's group ``C`` (isolated in the second).
        round_b: ``k_B``, the round ``B`` is isolated from.
        round_c: ``k_C``, the round ``C`` is isolated from.
    """

    group_b: frozenset[ProcessId]
    group_c: frozenset[ProcessId]
    round_b: Round
    round_c: Round

    def __post_init__(self) -> None:
        if not self.group_b or not self.group_c:
            raise ValueError("merge groups must be non-empty")
        if self.group_b & self.group_c:
            raise ValueError("merge groups must be disjoint")
        if self.round_b < 1 or self.round_c < 1:
            raise ValueError("isolation rounds start at 1")

    def group_a(self, n: int) -> frozenset[ProcessId]:
        """Group ``A``: everyone outside ``B ∪ C``."""
        return frozenset(range(n)) - self.group_b - self.group_c


def uniform_proposal(execution: Execution) -> Payload:
    """The single proposal shared by all processes, if uniform.

    The executions of Table 1 are all-propose-0 or all-propose-1; merging
    is defined for such uniform-proposal executions.

    Raises:
        ModelViolation: if proposals are not uniform.
    """
    proposals = set(execution.proposals().values())
    if len(proposals) != 1:
        raise ModelViolation(
            f"expected a uniform proposal, got {sorted(map(repr, proposals))}"
        )
    return next(iter(proposals))


def is_mergeable(
    spec: MergeSpec, exec_b: Execution, exec_c: Execution
) -> bool:
    """Definition 2 on concrete executions.

    Checks the round condition of Definition 2 together with the setting it
    presumes: uniform proposals with the first execution proposing 0-like
    values (we only require ``b = 0`` to mean "the two executions share the
    same uniform proposal"), matching system sizes, and each group actually
    isolated from its round in its execution.
    """
    try:
        check_merge_inputs(spec, exec_b, exec_c)
    except ModelViolation:
        return False
    return True


def check_merge_inputs(
    spec: MergeSpec, exec_b: Execution, exec_c: Execution
) -> None:
    """Validate everything :func:`merge` assumes; raise with specifics."""
    if exec_b.n != exec_c.n or exec_b.t != exec_c.t:
        raise ModelViolation("executions disagree on (n, t)")
    if exec_b.rounds != exec_c.rounds:
        raise ModelViolation(
            f"executions span different horizons "
            f"({exec_b.rounds} vs {exec_c.rounds})"
        )
    if len(spec.group_b) + len(spec.group_c) > exec_b.t:
        raise ModelViolation(
            f"|B| + |C| = {len(spec.group_b) + len(spec.group_c)} "
            f"exceeds t = {exec_b.t}"
        )
    proposal_b = uniform_proposal(exec_b)
    proposal_c = uniform_proposal(exec_c)
    same_round_one = spec.round_b == 1 and spec.round_c == 1
    close_and_same_bit = (
        abs(spec.round_b - spec.round_c) <= 1 and proposal_b == proposal_c
    )
    if not (same_round_one or close_and_same_bit):
        raise ModelViolation(
            f"not mergeable (Definition 2): k_B={spec.round_b}, "
            f"k_C={spec.round_c}, proposals {proposal_b!r}/{proposal_c!r}"
        )
    check_isolated(exec_b, spec.group_b, spec.round_b)
    check_isolated(exec_c, spec.group_c, spec.round_c)
    if exec_b.faulty != spec.group_b:
        raise ModelViolation(
            "first execution must have exactly group B faulty"
        )
    if exec_c.faulty != spec.group_c:
        raise ModelViolation(
            "second execution must have exactly group C faulty"
        )


def merge(
    spec: MergeSpec,
    exec_b: Execution,
    exec_c: Execution,
    factory: ProcessFactory,
    *,
    check: bool = True,
    strict_replay: bool = True,
) -> Execution:
    """Algorithm 5: splice two mergeable executions into one.

    Args:
        spec: groups and isolation rounds.
        exec_b: the recorded ``E_0^{B(k_B)}``.
        exec_c: the recorded ``E_b^{C(k_C)}``.
        factory: the algorithm under test (builds honest machines); must be
            the same algorithm that produced both recorded executions.
        check: validate the result (execution conditions, both isolations,
            indistinguishability to B and C — i.e. Lemma 16's conclusions).
        strict_replay: assert that re-running B/C machines on their
            recorded received sets reproduces their recorded sends
            (determinism cross-check).

    Returns:
        The merged execution with ``faulty = B ∪ C``.
    """
    if check:
        check_merge_inputs(spec, exec_b, exec_c)
    n = exec_b.n
    horizon = exec_b.rounds
    group_b, group_c = spec.group_b, spec.group_c

    def record_for(pid: ProcessId) -> Execution:
        return exec_c if pid in group_c else exec_b

    machines: list[Process] = [
        factory(pid, record_for(pid).behavior(pid).proposal)
        for pid in range(n)
    ]
    fragments: list[list[Fragment]] = [[] for _ in range(n)]
    for round_ in range(1, horizon + 1):
        states = [machine.snapshot(round_) for machine in machines]
        outgoing_by_pid: list[frozenset[Message]] = []
        inboxes: list[set[Message]] = [set() for _ in range(n)]
        for pid, machine in enumerate(machines):
            mapping = machine.validate_outgoing(
                round_, machine.outgoing(round_)
            )
            messages = frozenset(
                Message(pid, receiver, round_, payload)
                for receiver, payload in mapping.items()
            )
            if strict_replay and (pid in group_b or pid in group_c):
                recorded = record_for(pid).behavior(pid).fragment(
                    round_
                ).all_outgoing
                if messages != recorded:
                    raise ModelViolation(
                        f"replay divergence: p{pid} r{round_} sends "
                        f"differ from its recorded behaviour"
                    )
            outgoing_by_pid.append(messages)
            for message in messages:
                inboxes[message.receiver].add(message)
        for pid, machine in enumerate(machines):
            to_me = frozenset(inboxes[pid])
            if pid in group_b or pid in group_c:
                received = record_for(pid).behavior(pid).received(round_)
                if not received <= to_me:
                    raise ModelViolation(
                        f"merge receive-validity pre-check failed: p{pid} "
                        f"r{round_} expects messages nobody sent "
                        "(executions were not mergeable)"
                    )
                receive_omitted = to_me - received
            else:
                received = to_me
                receive_omitted = frozenset()
            fragments[pid].append(
                Fragment(
                    state=states[pid],
                    sent=outgoing_by_pid[pid],
                    send_omitted=frozenset(),
                    received=received,
                    receive_omitted=receive_omitted,
                )
            )
            machine.deliver(
                round_,
                {
                    message.sender: message.payload
                    for message in sorted(
                        received, key=lambda m: m.sender
                    )
                },
            )
    merged = Execution(
        n=n,
        t=exec_b.t,
        faulty=group_b | group_c,
        behaviors=tuple(
            Behavior(
                tuple(fragments[pid]),
                final_state=machines[pid].snapshot(horizon + 1),
            )
            for pid in range(n)
        ),
    )
    if check:
        check_merge_result(spec, exec_b, exec_c, merged)
    return merged


def check_merge_result(
    spec: MergeSpec,
    exec_b: Execution,
    exec_c: Execution,
    merged: Execution,
) -> None:
    """Machine-check Lemma 16's three conclusions on a merged execution.

    1. The merge is a valid execution.
    2. It is indistinguishable from ``exec_b`` (resp. ``exec_c``) to every
       member of ``B`` (resp. ``C``).
    3. ``B`` (resp. ``C``) is isolated from ``k_B`` (resp. ``k_C``) in it.

    Raises:
        ModelViolation: on the first failing conclusion.
    """
    check_execution(merged)  # conclusion 1
    for pid in sorted(spec.group_b):  # conclusion 2 (B side)
        if not behaviors_indistinguishable(
            merged.behavior(pid), exec_b.behavior(pid)
        ):
            raise ModelViolation(
                f"p{pid} ∈ B distinguishes the merge from E_0^B"
            )
    for pid in sorted(spec.group_c):  # conclusion 2 (C side)
        if not behaviors_indistinguishable(
            merged.behavior(pid), exec_c.behavior(pid)
        ):
            raise ModelViolation(
                f"p{pid} ∈ C distinguishes the merge from E_b^C"
            )
    check_isolated(merged, spec.group_b, spec.round_b)  # conclusion 3
    check_isolated(merged, spec.group_c, spec.round_c)
