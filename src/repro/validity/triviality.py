"""Triviality of agreement problems (§1, §4.1).

A *val*-agreement problem is trivial iff some value is admissible in every
input configuration:

    ``∃ v' ∈ V_O : v' ∈ ∩_{c ∈ I} val(c)``

Trivial problems are solvable with zero messages (decide the
always-admissible value immediately), so the ``Ω(t²)`` bound — and the
Algorithm-1 reduction that proves it — applies only to non-trivial ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.validity.property import AgreementProblem
from repro.types import Payload


@dataclass(frozen=True)
class TrivialityReport:
    """Outcome of the triviality test.

    Attributes:
        trivial: whether an always-admissible value exists.
        always_admissible: the full set of always-admissible values.
        witness: a deterministic pick from that set (the zero-message
            solution's constant decision), or ``None``.
    """

    trivial: bool
    always_admissible: frozenset[Payload]
    witness: Payload | None


def triviality_report(problem: AgreementProblem) -> TrivialityReport:
    """Decide triviality by intersecting ``val`` over the enumerated ``I``."""
    always = problem.always_admissible()
    witness = (
        min(always, key=repr) if always else None
    )  # deterministic representative
    return TrivialityReport(
        trivial=bool(always),
        always_admissible=always,
        witness=witness,
    )


def is_trivial(problem: AgreementProblem) -> bool:
    """Shorthand for ``triviality_report(problem).trivial``."""
    return problem.is_trivial()
