"""Input configurations (§4.1).

A *process-proposal pair* ``(p_i, v)`` assigns proposal ``v`` to process
``p_i``; an *input configuration* is a set of such pairs for between
``n - t`` and ``n`` distinct processes — an assignment of proposals to all
correct processes.  ``I`` denotes the set of all input configurations and
``I_n`` those with exactly ``n`` pairs.

:class:`InputConfig` is immutable and hashable so configurations can be
used as dictionary keys (the Γ function of the containment condition is a
mapping ``I → V_O``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.types import Payload, ProcessId, validate_system_size


@dataclass(frozen=True)
class InputConfig:
    """An input configuration ``c ∈ I`` (§4.1).

    Attributes:
        n: total number of processes in the system.
        t: the corruption budget (configurations omit at most ``t``
            processes).
        pairs: the process-proposal pairs, sorted by process id.
    """

    n: int
    t: int
    pairs: tuple[tuple[ProcessId, Payload], ...]

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        pids = [pid for pid, _ in self.pairs]
        if pids != sorted(set(pids)):
            raise ValueError(
                "pairs must be sorted by process id without duplicates"
            )
        if pids and not 0 <= pids[0] <= pids[-1] < self.n:
            raise ValueError(f"process ids outside range({self.n})")
        if not self.n - self.t <= len(self.pairs) <= self.n:
            raise ValueError(
                f"a configuration names between n-t={self.n - self.t} "
                f"and n={self.n} processes, got {len(self.pairs)}"
            )

    @classmethod
    def from_mapping(
        cls, n: int, t: int, proposals: Mapping[ProcessId, Payload]
    ) -> "InputConfig":
        """Build a configuration from a ``pid -> proposal`` mapping."""
        return cls(n=n, t=t, pairs=tuple(sorted(proposals.items())))

    @classmethod
    def full(
        cls, n: int, t: int, proposals: Sequence[Payload]
    ) -> "InputConfig":
        """A configuration in ``I_n``: all processes correct."""
        if len(proposals) != n:
            raise ValueError(
                f"full configuration needs {n} proposals, "
                f"got {len(proposals)}"
            )
        return cls(
            n=n, t=t, pairs=tuple(enumerate(proposals))
        )

    @property
    def correct(self) -> frozenset[ProcessId]:
        """``π(c)``: processes the configuration declares correct."""
        return frozenset(pid for pid, _ in self.pairs)

    @property
    def is_full(self) -> bool:
        """Whether ``c ∈ I_n`` (every process is correct)."""
        return len(self.pairs) == self.n

    def proposal(self, pid: ProcessId) -> Payload | None:
        """``proposal(c[i])``, or ``None`` (the paper's ``⊥``) if absent."""
        for candidate, value in self.pairs:
            if candidate == pid:
                return value
        return None

    def as_mapping(self) -> dict[ProcessId, Payload]:
        """The configuration as a plain ``pid -> proposal`` dict."""
        return dict(self.pairs)

    def proposals_multiset(self) -> list[Payload]:
        """The proposals, with multiplicity (for counting arguments)."""
        return [value for _, value in self.pairs]

    def contains(self, other: "InputConfig") -> bool:
        """The containment relation ``self ⊇ other`` (§4.2).

        ``c1 ⊇ c2`` iff every process of ``c2`` appears in ``c1`` with the
        same proposal.
        """
        if (self.n, self.t) != (other.n, other.t):
            return False
        mine = self.as_mapping()
        return all(
            pid in mine and mine[pid] == value
            for pid, value in other.pairs
        )

    def restricted_to(
        self, processes: Iterable[ProcessId]
    ) -> "InputConfig":
        """The sub-configuration on ``processes`` (must stay within I)."""
        keep = frozenset(processes)
        return InputConfig(
            n=self.n,
            t=self.t,
            pairs=tuple(
                (pid, value) for pid, value in self.pairs if pid in keep
            ),
        )

    def containment_set(self) -> Iterator["InputConfig"]:
        """``Cnt(c)``: every configuration this one contains (§4.2).

        Generated directly (all large-enough subsets of ``π(c)``) rather
        than by filtering ``I`` — the set ``I`` is exponentially larger.
        Includes ``c`` itself (the relation is reflexive).
        """
        pids = [pid for pid, _ in self.pairs]
        smallest = self.n - self.t
        for size in range(smallest, len(pids) + 1):
            for subset in itertools.combinations(pids, size):
                yield self.restricted_to(subset)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"p{pid}:{value!r}" for pid, value in self.pairs
        )
        return f"InputConfig(n={self.n}, t={self.t}, [{inner}])"


def enumerate_input_configs(
    n: int, t: int, values: Sequence[Payload]
) -> Iterator[InputConfig]:
    """Enumerate all of ``I`` for a finite proposal domain.

    The count is ``Σ_{s=n-t}^{n} C(n, s)·|V|^s`` — exponential; intended
    for the small instances the solvability decision procedure analyses.
    """
    validate_system_size(n, t)
    if not values:
        raise ValueError("the proposal domain must be non-empty")
    for size in range(n - t, n + 1):
        for subset in itertools.combinations(range(n), size):
            for assignment in itertools.product(values, repeat=size):
                yield InputConfig(
                    n=n, t=t, pairs=tuple(zip(subset, assignment))
                )


def enumerate_full_configs(
    n: int, t: int, values: Sequence[Payload]
) -> Iterator[InputConfig]:
    """Enumerate ``I_n`` (all-correct configurations) for a finite domain."""
    for assignment in itertools.product(values, repeat=n):
        yield InputConfig.full(n, t, list(assignment))


def count_input_configs(n: int, t: int, domain_size: int) -> int:
    """``|I|`` for a domain of ``domain_size`` values (sanity/sizing)."""
    import math

    return sum(
        math.comb(n, size) * domain_size**size
        for size in range(n - t, n + 1)
    )
