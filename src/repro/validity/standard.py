"""The standard validity properties as :class:`AgreementProblem` builders.

Covers every flavour the paper names (§1, §4, §5):

* **Weak Validity** — weak consensus [28, 37, 79, 101]: if all processes
  are correct and unanimous, their value must be decided.
* **Strong Validity** — strong consensus [37, 45, 78]: if all *correct*
  processes are unanimous, their value must be decided.
* **Sender Validity** — Byzantine broadcast [11, 88, 96, 98]: a correct
  designated sender's value must be decided.
* **IC-Validity** — interactive consistency [18, 54, 78]: the decided
  vector contains every correct process's proposal
  (``IC-Validity(c) = {c' ∈ I_n | c' ⊇ c}``, §5.2.2).
* **Correct-Proposal Validity** — the decided value was proposed by a
  correct process (a common blockchain-adjacent strengthening; exercises
  a non-obvious containment-condition boundary).
* **External Validity** (§4.3) — the decided value satisfies a global
  predicate.  As the paper notes, the formalism classifies it as trivial
  (any fixed valid value is admissible everywhere); the builder exists to
  demonstrate exactly that — see experiment E8 for how Corollary 1 still
  applies to concrete algorithms.
* **Trivial / Constant** — baseline trivial problems for the classifier.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.validity.input_config import (
    InputConfig,
    enumerate_full_configs,
)
from repro.validity.property import AgreementProblem, cached
from repro.types import Payload, ProcessId


def _unanimous(values: list[Payload]) -> Payload | None:
    """The single value of a non-empty unanimous list, else ``None``."""
    unique = set(values)
    if len(unique) == 1:
        return values[0]
    return None


def weak_consensus_problem(
    n: int, t: int, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """Weak consensus: binds only fully-correct unanimous configurations."""
    domain = tuple(values)

    def validity(config: InputConfig) -> frozenset[Payload]:
        if config.is_full:
            unanimous = _unanimous(config.proposals_multiset())
            if unanimous is not None:
                return frozenset([unanimous])
        return frozenset(domain)

    return cached(
        AgreementProblem(
            name="weak-consensus",
            n=n,
            t=t,
            input_values=domain,
            output_values=domain,
            validity=validity,
        )
    )


def strong_consensus_problem(
    n: int, t: int, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """Strong consensus: binds on unanimity of the correct processes."""
    domain = tuple(values)

    def validity(config: InputConfig) -> frozenset[Payload]:
        unanimous = _unanimous(config.proposals_multiset())
        if unanimous is not None:
            return frozenset([unanimous])
        return frozenset(domain)

    return cached(
        AgreementProblem(
            name="strong-consensus",
            n=n,
            t=t,
            input_values=domain,
            output_values=domain,
            validity=validity,
        )
    )


def byzantine_broadcast_problem(
    n: int,
    t: int,
    sender: ProcessId = 0,
    values: Sequence[Payload] = (0, 1),
    sender_faulty_marker: Payload = "SENDER-FAULTY",
) -> AgreementProblem:
    """Byzantine broadcast: Sender Validity for a designated ``sender``.

    ``V_O`` adds a marker decided (optionally) when the sender is faulty.
    """
    domain = tuple(values)
    outputs = domain + (sender_faulty_marker,)

    def validity(config: InputConfig) -> frozenset[Payload]:
        proposal = config.proposal(sender)
        if proposal is not None:
            return frozenset([proposal])
        return frozenset(outputs)

    return cached(
        AgreementProblem(
            name=f"byzantine-broadcast(sender={sender})",
            n=n,
            t=t,
            input_values=domain,
            output_values=outputs,
            validity=validity,
        )
    )


def interactive_consistency_problem(
    n: int, t: int, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """Interactive consistency: decide a full configuration containing c.

    The paper takes ``V_O = I_n``; a full configuration is isomorphic to
    an n-tuple of proposals, and the concrete IC protocols decide exactly
    such tuples, so the output domain here is the tuples.
    """
    domain = tuple(values)
    full_vectors = tuple(
        tuple(config.proposals_multiset())
        for config in enumerate_full_configs(n, t, domain)
    )

    def validity(config: InputConfig) -> frozenset[Payload]:
        assigned = config.as_mapping()
        return frozenset(
            vector
            for vector in full_vectors
            if all(
                vector[pid] == value for pid, value in assigned.items()
            )
        )

    return cached(
        AgreementProblem(
            name="interactive-consistency",
            n=n,
            t=t,
            input_values=domain,
            output_values=full_vectors,
            validity=validity,
        )
    )


def correct_proposal_problem(
    n: int, t: int, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """The decided value must be some correct process's proposal.

    A natural strengthening whose containment condition fails exactly when
    a full configuration exists in which no value reaches multiplicity
    ``t+1`` — e.g. binary with ``n <= 2t`` (compare Theorem 5's boundary).
    """
    domain = tuple(values)

    def validity(config: InputConfig) -> frozenset[Payload]:
        return frozenset(config.proposals_multiset())

    return cached(
        AgreementProblem(
            name="correct-proposal",
            n=n,
            t=t,
            input_values=domain,
            output_values=domain,
            validity=validity,
        )
    )


ABSENT = "⊥-absent"
"""The ⊥ marker in vector-consensus decisions (a slot left empty)."""


def vector_consensus_problem(
    n: int, t: int, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """Vector consensus ([38] in §6): agree on ≥ n-t proposals.

    Decisions are n-slot vectors over ``V_I ∪ {ABSENT}`` with at least
    ``n - t`` filled slots, where every *correct* process's slot holds
    either its true proposal or ``ABSENT``.  Faulty slots are
    unconstrained (a Byzantine process may "propose" anything).

    Satisfies the containment condition (Γ = the IC vector itself), so it
    is authenticated-solvable for any ``t < n`` — and, being non-trivial,
    it is subject to the Ω(t²) bound like everything else.
    """
    import itertools

    domain = tuple(values)
    slot_values = domain + (ABSENT,)
    vectors = tuple(
        vector
        for vector in itertools.product(slot_values, repeat=n)
        if sum(1 for slot in vector if slot != ABSENT) >= n - t
    )

    def validity(config: InputConfig) -> frozenset[Payload]:
        assigned = config.as_mapping()
        return frozenset(
            vector
            for vector in vectors
            if all(
                vector[pid] in (value, ABSENT)
                for pid, value in assigned.items()
            )
        )

    return cached(
        AgreementProblem(
            name="vector-consensus",
            n=n,
            t=t,
            input_values=domain,
            output_values=vectors,
            validity=validity,
        )
    )


def external_validity_problem(
    n: int,
    t: int,
    values: Sequence[Payload],
    predicate: Callable[[Payload], bool],
) -> AgreementProblem:
    """External Validity in the §4.1 formalism — provably trivial (§4.3).

    ``val(c)`` is the constant set of predicate-satisfying values, so any
    fixed valid value is always admissible and
    :meth:`AgreementProblem.is_trivial` returns ``True``.  The paper's
    point (§4.3): the formalism cannot see that deciding a transaction
    requires *knowing* it; Corollary 1 handles the concrete-algorithm
    case instead.
    """
    domain = tuple(values)
    valid_values = frozenset(v for v in domain if predicate(v))
    if not valid_values:
        raise ValueError("the predicate admits no value in the domain")

    def validity(config: InputConfig) -> frozenset[Payload]:
        return valid_values

    return AgreementProblem(
        name="external-validity",
        n=n,
        t=t,
        input_values=domain,
        output_values=domain,
        validity=validity,
    )


def constant_problem(
    n: int, t: int, value: Payload, values: Sequence[Payload] = (0, 1)
) -> AgreementProblem:
    """The archetypal trivial problem: ``value`` is always admissible."""
    domain = tuple(values)
    if value not in domain:
        raise ValueError(f"{value!r} not in the output domain")

    def validity(config: InputConfig) -> frozenset[Payload]:
        return frozenset([value])

    return AgreementProblem(
        name=f"constant({value!r})",
        n=n,
        t=t,
        input_values=domain,
        output_values=domain,
        validity=validity,
    )


STANDARD_PROBLEMS = (
    weak_consensus_problem,
    strong_consensus_problem,
    byzantine_broadcast_problem,
    interactive_consistency_problem,
    correct_proposal_problem,
)
"""The non-trivial standard builders, for sweep harnesses (E5)."""
