"""The containment relation on input configurations (§4.2).

``c1 ⊇ c2`` iff every process of ``c2`` appears in ``c1`` with the same
proposal.  ``Cnt(c)`` is the set of configurations ``c`` contains.  This
module provides the relation as standalone functions (the method forms
live on :class:`~repro.validity.input_config.InputConfig`) plus the
intersection Lemma 7 revolves around:

    any decision reached in an execution corresponding to ``c`` must lie
    in ``∩_{c' ∈ Cnt(c)} val(c')``.
"""

from __future__ import annotations

from typing import Iterable

from repro.validity.input_config import InputConfig
from repro.validity.property import AgreementProblem
from repro.types import Payload


def contains(left: InputConfig, right: InputConfig) -> bool:
    """The containment relation ``left ⊇ right``."""
    return left.contains(right)


def containment_set(config: InputConfig) -> list[InputConfig]:
    """``Cnt(config)`` as a list (includes ``config``; reflexivity)."""
    return list(config.containment_set())


def admissible_under_containment(
    problem: AgreementProblem, config: InputConfig
) -> frozenset[Payload]:
    """``∩_{c' ∈ Cnt(config)} val(c')`` — Lemma 7's admissible set.

    The decisions an algorithm may take in any execution corresponding to
    ``config`` without risking a validity violation in some
    indistinguishable execution.  Empty exactly when the containment
    condition fails *at this configuration*.
    """
    common: frozenset[Payload] | None = None
    for contained in config.containment_set():
        admissible = problem.admissible(contained)
        common = admissible if common is None else common & admissible
        if not common:
            return frozenset()
    assert common is not None  # Cnt(c) always holds c itself
    return common


def check_partial_order_axioms(
    configs: Iterable[InputConfig],
) -> list[str]:
    """Check reflexivity/antisymmetry/transitivity of ⊇ on a sample.

    Returns a list of human-readable violations (empty = all hold).  Used
    by the property-based tests; the relation is a partial order by
    construction, so any violation is an implementation bug.
    """
    sample = list(configs)
    problems: list[str] = []
    for a in sample:
        if not a.contains(a):
            problems.append(f"reflexivity fails at {a!r}")
    for a in sample:
        for b in sample:
            if a.contains(b) and b.contains(a) and a != b:
                problems.append(f"antisymmetry fails at {a!r}, {b!r}")
    for a in sample:
        for b in sample:
            if not a.contains(b):
                continue
            for c in sample:
                if b.contains(c) and not a.contains(c):
                    problems.append(
                        f"transitivity fails at {a!r} ⊇ {b!r} ⊇ {c!r}"
                    )
    return problems
