"""The validity-property formalism of §4.1.

* :mod:`repro.validity.input_config` — process-proposal pairs, the set
  ``I`` of input configurations, and enumeration for finite domains.
* :mod:`repro.validity.property` — validity properties and agreement
  problems as values.
* :mod:`repro.validity.standard` — the named properties of the paper.
* :mod:`repro.validity.containment` — the ⊇ relation, ``Cnt(c)`` and the
  Lemma-7 intersection.
* :mod:`repro.validity.triviality` — the trivial/non-trivial divide.
"""

from repro.validity.containment import (
    admissible_under_containment,
    check_partial_order_axioms,
    containment_set,
    contains,
)
from repro.validity.input_config import (
    InputConfig,
    count_input_configs,
    enumerate_full_configs,
    enumerate_input_configs,
)
from repro.validity.property import (
    AgreementProblem,
    ValidityFn,
    cached,
    problem_from_table,
    tabulate,
)
from repro.validity.standard import (
    ABSENT,
    STANDARD_PROBLEMS,
    byzantine_broadcast_problem,
    constant_problem,
    correct_proposal_problem,
    external_validity_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    vector_consensus_problem,
    weak_consensus_problem,
)
from repro.validity.triviality import (
    TrivialityReport,
    is_trivial,
    triviality_report,
)

__all__ = [
    "ABSENT",
    "AgreementProblem",
    "InputConfig",
    "vector_consensus_problem",
    "STANDARD_PROBLEMS",
    "TrivialityReport",
    "ValidityFn",
    "admissible_under_containment",
    "byzantine_broadcast_problem",
    "cached",
    "check_partial_order_axioms",
    "constant_problem",
    "containment_set",
    "contains",
    "correct_proposal_problem",
    "count_input_configs",
    "enumerate_full_configs",
    "enumerate_input_configs",
    "external_validity_problem",
    "interactive_consistency_problem",
    "is_trivial",
    "problem_from_table",
    "strong_consensus_problem",
    "tabulate",
    "triviality_report",
    "weak_consensus_problem",
]
