"""Validity properties and agreement problems (§4.1).

A validity property is a function ``val : I → 2^{V_O} \\ {∅}`` mapping each
input configuration to its admissible decisions.  A specific agreement
problem — the "*val*-agreement problem" — is fully determined by its
validity property, which also encodes ``n``, ``t``, ``V_I`` and ``V_O``.

:class:`AgreementProblem` bundles a validity property with finite,
enumerable value domains, which is what the solvability decision procedure
(Theorem 4) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable, Sequence

from repro.validity.input_config import (
    InputConfig,
    enumerate_input_configs,
)
from repro.types import Payload, validate_system_size

ValidityFn = Callable[[InputConfig], frozenset[Payload]]
"""The raw ``val`` function: configuration → non-empty admissible set."""


@dataclass(frozen=True)
class AgreementProblem:
    """A specific Byzantine agreement problem (the "val-agreement" problem).

    Attributes:
        name: display name.
        n: system size.
        t: corruption budget.
        input_values: the finite proposal domain ``V_I``.
        output_values: the finite decision domain ``V_O``.
        validity: the ``val`` function.
    """

    name: str
    n: int
    t: int
    input_values: tuple[Payload, ...]
    output_values: tuple[Payload, ...]
    validity: ValidityFn = field(repr=False)

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if not self.input_values:
            raise ValueError("V_I must be non-empty")
        if not self.output_values:
            raise ValueError("V_O must be non-empty")
        if len(set(self.input_values)) != len(self.input_values):
            raise ValueError("V_I contains duplicates")
        if len(set(self.output_values)) != len(self.output_values):
            raise ValueError("V_O contains duplicates")

    def admissible(self, config: InputConfig) -> frozenset[Payload]:
        """``val(c)``, checked to be a non-empty subset of ``V_O``.

        Raises:
            ValueError: if the validity function returns an empty set or
                values outside ``V_O`` — both make ``val`` ill-formed
                (§4.1 requires ``val(c) ≠ ∅``).
        """
        admissible = self.validity(config)
        if not admissible:
            raise ValueError(
                f"{self.name}: val(c) is empty for {config!r}"
            )
        extraneous = admissible - frozenset(self.output_values)
        if extraneous:
            raise ValueError(
                f"{self.name}: val(c) leaves V_O: {sorted(map(repr, extraneous))}"
            )
        return admissible

    def input_configs(self) -> Iterable[InputConfig]:
        """Enumerate ``I`` for this problem's domains."""
        return enumerate_input_configs(self.n, self.t, self.input_values)

    def always_admissible(self) -> frozenset[Payload]:
        """``∩_{c ∈ I} val(c)`` — the set of always-admissible decisions.

        Non-empty exactly when the problem is *trivial* (§4.1): a value in
        this set can be decided with zero communication.
        """
        common: frozenset[Payload] | None = None
        for config in self.input_configs():
            admissible = self.admissible(config)
            common = (
                admissible if common is None else common & admissible
            )
            if not common:
                return frozenset()
        return common if common is not None else frozenset()

    def is_trivial(self) -> bool:
        """Whether some decision is admissible in every configuration."""
        return bool(self.always_admissible())

    def check_decision(
        self, config: InputConfig, decision: Payload
    ) -> bool:
        """Whether ``decision`` satisfies ``val`` for ``config``.

        The check an execution-level test applies to each correct
        process's decision (the "satisfying validity" clause of §4.1).
        """
        return decision in self.admissible(config)


def tabulate(problem: AgreementProblem) -> dict[InputConfig, frozenset[Payload]]:
    """Materialize ``val`` as a table over all of ``I`` (small instances)."""
    return {
        config: problem.admissible(config)
        for config in problem.input_configs()
    }


def problem_from_table(
    name: str,
    n: int,
    t: int,
    input_values: Sequence[Payload],
    output_values: Sequence[Payload],
    table: dict[InputConfig, frozenset[Payload]],
) -> AgreementProblem:
    """An :class:`AgreementProblem` backed by an explicit table.

    Useful for enumerating *arbitrary* validity properties in the
    solvability experiments (E5): any assignment of admissible sets is a
    problem.
    """
    missing = object()

    def validity(config: InputConfig) -> frozenset[Payload]:
        admissible = table.get(config, missing)
        if admissible is missing:
            raise KeyError(f"no table entry for {config!r}")
        return admissible  # type: ignore[return-value]

    return AgreementProblem(
        name=name,
        n=n,
        t=t,
        input_values=tuple(input_values),
        output_values=tuple(output_values),
        validity=validity,
    )


def cached(problem: AgreementProblem) -> AgreementProblem:
    """A copy of ``problem`` whose ``val`` is memoized.

    The solvability machinery evaluates ``val`` on the same configuration
    many times (once per containing configuration); caching makes the
    decision procedure linear in ``|I| · 2^t`` instead of quadratic.
    """
    memo = lru_cache(maxsize=None)(problem.validity)
    return AgreementProblem(
        name=problem.name,
        n=problem.n,
        t=problem.t,
        input_values=problem.input_values,
        output_values=problem.output_values,
        validity=memo,
    )
