"""Exception hierarchy for the library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Model violations (an execution trace that breaks the
Appendix-A validity conditions) and protocol violations (a state machine
breaking the rules of the computational model, e.g. sending two messages to
the same receiver in one round) are distinguished because the former indicate
a broken *trace* and the latter a broken *algorithm*.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ArtifactError(ReproError):
    """A persisted artifact exists but cannot be understood.

    Raised when a run ledger, trend log, bench trajectory or similar
    on-disk artifact is truncated, is not valid JSON, or lacks required
    fields.  Distinguished from the other :class:`ReproError` subclasses
    because it is an *environment* failure: the CLI maps it (like
    :class:`OSError`) to exit code 2, not the domain-failure exit 1.
    """


class ModelViolation(ReproError):
    """An execution trace violates the formal execution model of Appendix A.

    Raised by the execution validity checker when one of the fragment
    conditions (A.1.4), behavior conditions (A.1.5) or execution guarantees
    (send-validity, receive-validity, omission-validity; A.1.6) fails.
    """


class ProtocolViolation(ReproError):
    """A process state machine broke the rules of the computational model.

    Examples: sending more than one message to the same receiver in a round,
    sending a message to itself, changing its decision after deciding.
    """


class AdversaryError(ReproError):
    """An adversary strategy requested an illegal corruption.

    Examples: corrupting more than ``t`` processes, forging a signature of a
    non-corrupted process, or an omission adversary attempting Byzantine
    (non-state-machine) behaviour.
    """


class SignatureError(ReproError):
    """Signature creation or verification failed structurally.

    Verification of a *forged* signature does not raise — it returns
    ``False``; this exception covers misuse such as signing for an unknown
    process id.
    """


class UnsolvableProblemError(ReproError):
    """A construction was asked to solve an unsolvable agreement problem.

    For instance, instantiating the Algorithm-2 reduction for a validity
    property that fails the containment condition, or an unauthenticated
    protocol with ``n <= 3t``.
    """


class TrivialProblemError(ReproError):
    """An operation that requires a non-trivial problem got a trivial one.

    The Algorithm-1 reduction (weak consensus from any non-trivial problem)
    is undefined for trivial problems: they have an always-admissible value.
    """
