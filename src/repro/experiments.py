"""The experiment suite: one function per DESIGN.md experiment id.

Each ``run_eN`` function executes the experiment at the given scale and
returns an :class:`ExperimentResult` — structured data plus a rendered
text report (the "table/figure" the paper-shaped harness regenerates).
The CLI (``python -m repro``) and the pytest benchmarks both call these,
so the printed artifacts and the benchmarked code paths are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.complexity import (
    SweepPoint,
    quadratic_parameter_grid,
    sweep,
)
from repro.analysis.fitting import fit_sweep
from repro.analysis.tables import render_kv, render_sweep, render_table
from repro.lowerbound.bound import weak_consensus_floor
from repro.lowerbound.driver import AttackOutcome
from repro.lowerbound.partition import canonical_partition
from repro.omission.indistinguishability import divergence_profile
from repro.omission.isolation import isolate_group
from repro.omission.merge import MergeSpec, merge
from repro.omission.swap import swap_omission_checked
from repro.protocols.base import ProtocolSpec
from repro.protocols.dolev_strong import dolev_strong_spec
from repro.protocols.external_validity import (
    ClientPool,
    external_validity_spec,
)
from repro.protocols.interactive_consistency import authenticated_ic_spec
from repro.protocols.subquadratic import (
    committee_cheater_spec,
    leader_echo_spec,
    ring_token_spec,
    seeded_committee_cheater_spec,
    silent_cheater_spec,
)
from repro.protocols.weak_consensus import broadcast_weak_consensus_spec
from repro.reductions.weak_from_any import (
    reduce_weak_consensus,
    reduce_weak_consensus_from_executions,
)
from repro.solvability.strong_consensus import sweep_boundary
from repro.solvability.theorem import classify
from repro.validity.standard import (
    byzantine_broadcast_problem,
    constant_problem,
    correct_proposal_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    vector_consensus_problem,
    weak_consensus_problem,
)


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's structured outcome plus its rendered report.

    Attributes:
        experiment: the DESIGN.md experiment id (e.g. ``"E1"``).
        title: what the experiment regenerates.
        report: the printable artifact.
        data: machine-readable results for tests/benches to assert on.
    """

    experiment: str
    title: str
    report: str
    data: dict[str, Any] = field(default_factory=dict)


def run_e1(max_t: int = 16) -> ExperimentResult:
    """E1 — Theorem 2: correct weak consensus respects the t²/32 floor."""
    points = sweep(
        lambda n, t: broadcast_weak_consensus_spec(n, t),
        quadratic_parameter_grid(max_t),
    )
    fit = fit_sweep(points)
    violations = [
        point for point in points if point.worst_messages < point.floor
    ]
    report = "\n".join(
        [
            "E1 — worst-case message complexity of correct weak consensus",
            render_sweep(points),
            f"power-law fit: {fit.render()}",
            f"points below the t^2/32 floor: {len(violations)}",
        ]
    )
    return ExperimentResult(
        experiment="E1",
        title="weak consensus vs the t²/32 floor",
        report=report,
        data={
            "points": points,
            "fit": fit,
            "floor_violations": violations,
        },
    )


def run_e2(n: int = 10, t: int = 3, isolate_at: int = 2) -> ExperimentResult:
    """E2 — Figure 1: divergence bands under group isolation.

    Uses EIG (everyone relays everything it heard, every round) so both
    of Figure 1's bands are visible: the isolated group's sends deviate
    from round ``R+1`` (red band — its received sets shrank at ``R``) and
    the outside's sends deviate from round ``R+2`` (blue band — one
    propagation step later, as the group's altered relays reach it).
    Proposals are mixed so relayed content actually varies.
    """
    from repro.protocols.eig import eig_consensus_spec

    spec = eig_consensus_spec(n, t)
    partition = canonical_partition(n, t)
    proposals = [index % 2 for index in range(n)]
    reference = spec.run(proposals)
    isolated = spec.run(
        proposals, isolate_group(partition.group_b, isolate_at)
    )
    profile = divergence_profile(reference, isolated)
    in_group = profile.earliest_send_divergence(partition.group_b)
    outside = profile.earliest_send_divergence(
        partition.group_a | partition.group_c
    )
    rows = [
        (
            f"p{pid}",
            "B (isolated)" if pid in partition.group_b else "outside",
            profile.receive_divergence[pid],
            profile.send_divergence[pid],
        )
        for pid in range(n)
    ]
    from repro.analysis.spacetime import render_divergence

    report = "\n".join(
        [
            f"E2 — Figure 1: group B isolated from round {isolate_at}",
            render_table(
                ("process", "group", "first obs divergence",
                 "first send divergence"),
                rows,
            ),
            f"earliest send divergence inside B: round {in_group} "
            f"(Figure 1 predicts >= {isolate_at + 1})",
            f"earliest send divergence outside B: round {outside} "
            f"(Figure 1 predicts >= {isolate_at + 2})",
            "",
            "space-time bands (the figure itself):",
            render_divergence(
                reference,
                isolated,
                groups=[partition.group_b],
            ),
        ]
    )
    return ExperimentResult(
        experiment="E2",
        title="isolation divergence bands (Figure 1)",
        report=report,
        data={
            "profile": profile,
            "in_group_divergence": in_group,
            "outside_divergence": outside,
            "isolate_at": isolate_at,
        },
    )


CHEATERS: dict[str, Callable[[int, int], ProtocolSpec]] = {
    "silent": silent_cheater_spec,
    "leader-echo": leader_echo_spec,
    "committee": lambda n, t: committee_cheater_spec(n, t),
    "ring-token": ring_token_spec,
    "seeded-committee": lambda n, t: seeded_committee_cheater_spec(
        n, t, seed=0
    ),
}


def run_e3(
    ts: tuple[int, ...] = (8, 16, 24),
    *,
    jobs: int = 1,
    ledger: "Any | None" = None,
    progress: bool = False,
    stall_after: float = 30.0,
) -> ExperimentResult:
    """E3 — Lemmas 2–5: break every sub-quadratic cheater, every t.

    Args:
        jobs: worker count for the attack matrix; ``1`` (the default)
            runs the historical in-process sweep, ``> 1`` fans the cells
            out over a process pool (bit-identical outcomes — see
            :mod:`repro.parallel`).
        ledger: optional sweep :class:`~repro.obs.ledger.RunLedger`; the
            scheduler traces every cell into it and splices the segments
            in cell order, identically under either backend.
    """
    from repro.parallel import AttackJob, SweepScheduler

    matrix = [
        AttackJob(builder=name, n=t + 4, t=t, certify=True)
        for name in CHEATERS
        for t in ts
    ]
    sweep_report = SweepScheduler(
        jobs=jobs,
        ledger=ledger,
        progress=progress,
        stall_after=stall_after,
    ).run(matrix)
    sweep_report.raise_errors()
    outcomes: list[AttackOutcome] = sweep_report.values()
    rows = []
    for job, outcome in zip(matrix, outcomes):
        rows.append(
            (
                job.builder,
                job.n,
                job.t,
                outcome.bound.observed,
                f"{weak_consensus_floor(job.t):.1f}",
                outcome.witness.kind.value
                if outcome.witness
                else "NOT BROKEN",
                outcome.critical_round
                if outcome.critical_round is not None
                else "-",
            )
        )
    broken = sum(1 for outcome in outcomes if outcome.found_violation)
    report = "\n".join(
        [
            "E3 — the lower-bound attack vs sub-quadratic cheaters",
            render_table(
                ("cheater", "n", "t", "worst msgs", "t^2/32",
                 "violation", "critical R"),
                rows,
            ),
            f"broken: {broken}/{len(outcomes)} "
            "(every witness re-verified from scratch)",
            f"certificates: {sweep_report.certificates_verified}/"
            f"{len(outcomes)} cells shipped a portable attack "
            "certificate accepted by the independent verifier",
        ]
    )
    return ExperimentResult(
        experiment="E3",
        title="attack driver vs cheaters (Figure 2 pipeline)",
        report=report,
        data={
            "outcomes": outcomes,
            "broken": broken,
            "sweep": sweep_report,
        },
    )


def run_e4(n: int = 6, t: int = 2) -> ExperimentResult:
    """E4 — Algorithm 1: zero-message reduction on real protocols."""
    from repro.protocols.strong_consensus import (
        authenticated_strong_consensus_spec,
    )

    rows = []
    overheads = []
    anchors = [
        (
            "strong-consensus",
            authenticated_strong_consensus_spec(n, t),
            strong_consensus_problem(n, t),
        ),
        (
            "byzantine-broadcast",
            dolev_strong_spec(n, t),
            byzantine_broadcast_problem(n, t),
        ),
        (
            "interactive-consistency",
            authenticated_ic_spec(n, t),
            interactive_consistency_problem(n, t),
        ),
    ]
    for label, spec, problem in anchors:
        weak = reduce_weak_consensus(spec, problem)
        for bit in (0, 1):
            outer = weak.run_uniform(bit)
            decisions = set(outer.correct_decisions().values())
            inner_msgs = spec.run(
                [
                    weak_proposal
                    for weak_proposal in _inner_proposals(weak, bit, n)
                ]
            ).message_complexity()
            overhead = outer.message_complexity() - inner_msgs
            overheads.append(overhead)
            rows.append(
                (
                    label,
                    bit,
                    sorted(decisions),
                    outer.message_complexity(),
                    inner_msgs,
                    overhead,
                )
            )
    report = "\n".join(
        [
            "E4 — Algorithm 1: weak consensus from non-trivial problems",
            render_table(
                ("anchor problem", "proposal", "decisions",
                 "outer msgs", "inner msgs", "overhead"),
                rows,
            ),
            f"max reduction overhead: {max(overheads)} messages "
            "(the paper's reduction is zero-message)",
        ]
    )
    return ExperimentResult(
        experiment="E4",
        title="zero-message reduction (Algorithm 1)",
        report=report,
        data={"rows": rows, "max_overhead": max(overheads)},
    )


def _inner_proposals(weak_spec: ProtocolSpec, bit: int, n: int) -> list:
    """Recover the inner proposals a reduction run uses for ``bit``."""
    machines = [weak_spec.factory(pid, bit) for pid in range(n)]
    return [machine.inner.proposal for machine in machines]  # type: ignore[attr-defined]


def run_e5(n: int = 4, t: int = 1) -> ExperimentResult:
    """E5 — Theorem 4: classify the standard problems; run Algorithm 2."""
    from repro.errors import UnsolvableProblemError
    from repro.reductions.any_from_ic import solve_via_ic

    problems = [
        weak_consensus_problem(n, t),
        strong_consensus_problem(n, t),
        byzantine_broadcast_problem(n, t),
        interactive_consistency_problem(n, t),
        vector_consensus_problem(n, t),
        correct_proposal_problem(n, t),
        constant_problem(n, t, value=0),
    ]
    reports = [classify(problem) for problem in problems]
    rows = []
    for problem, result in zip(problems, reports):
        solved = "-"
        if not result.trivial and result.cc.holds:
            spec = solve_via_ic(problem, authenticated=True)
            execution = spec.run(
                [problem.input_values[index % len(problem.input_values)]
                 for index in range(n)]
            )
            decisions = set(execution.correct_decisions().values())
            solved = "yes" if len(decisions) == 1 else "SPLIT"
        rows.append(
            (
                result.problem_name,
                "Y" if result.trivial else "N",
                "Y" if result.cc.holds else "N",
                "Y" if result.authenticated_solvable else "N",
                "Y" if result.unauthenticated_solvable else "N",
                solved,
            )
        )
    unauth_blocked = 0
    for problem, result in zip(problems, reports):
        if result.trivial or not result.cc.holds:
            continue
        if n <= 3 * t:
            try:
                solve_via_ic(problem, authenticated=False)
            except UnsolvableProblemError:
                unauth_blocked += 1
    report = "\n".join(
        [
            f"E5 — Theorem 4 classification at n={n}, t={t}",
            render_table(
                ("problem", "trivial", "CC", "auth-solvable",
                 "unauth-solvable", "Algorithm-2 run"),
                rows,
            ),
        ]
    )
    return ExperimentResult(
        experiment="E5",
        title="general solvability theorem (Theorem 4)",
        report=report,
        data={"reports": reports, "rows": rows},
    )


def run_e6(max_n: int = 7) -> ExperimentResult:
    """E6 — Theorem 5: the n > 2t boundary for strong consensus."""
    points = sweep_boundary(
        list(range(2, max_n + 1)), list(range(1, max_n))
    )
    mismatches = [
        point for point in points if not point.matches_theorem
    ]
    rows = [
        (
            point.n,
            point.t,
            "Y" if point.cc_holds else "N",
            "Y" if point.expected else "N",
            "ok" if point.matches_theorem else "MISMATCH",
        )
        for point in points
    ]
    report = "\n".join(
        [
            "E6 — Theorem 5: strong consensus CC vs the n > 2t line",
            render_table(
                ("n", "t", "CC holds", "n > 2t", "verdict"), rows
            ),
            f"grid points: {len(points)}, mismatches: {len(mismatches)}",
        ]
    )
    return ExperimentResult(
        experiment="E6",
        title="strong-consensus solvability boundary (Theorem 5)",
        report=report,
        data={"points": points, "mismatches": mismatches},
    )


def run_e7(
    max_t: int = 8,
    *,
    jobs: int = 1,
    ledger: "Any | None" = None,
    progress: bool = False,
    stall_after: float = 30.0,
) -> ExperimentResult:
    """E7 — Dolev–Reischuk context: measured protocol complexities.

    Args:
        jobs: worker count for the measurement matrix (``1`` = serial;
            ``> 1`` fans cells out over a process pool, bit-identical).
        ledger: optional sweep :class:`~repro.obs.ledger.RunLedger` the
            scheduler splices every cell's trace into.
    """
    from repro.parallel import MeasureJob, SweepScheduler

    grids = {
        # n = 2t keeps the population proportional to the budget, so the
        # quadratic term is visible in the fitted exponent even at small
        # scale (with constant slack the additive term dominates).
        # Each label maps to its registered builder name so cells can be
        # rebuilt inside worker processes.
        "dolev-strong": (
            "dolev-strong",
            [(2 * t, t) for t in range(2, max_t + 1, 2)],
        ),
        "phase-king": (
            "phase-king",
            [(3 * t + 1, t) for t in range(1, max(2, max_t // 2))],
        ),
        "ic-parallel-ds": (
            "ic",
            quadratic_parameter_grid(min(max_t, 6), step=2),
        ),
    }
    matrix = [
        MeasureJob(builder=builder, n=n, t=t)
        for builder, grid in grids.values()
        for n, t in grid
    ]
    sweep_report = SweepScheduler(
        jobs=jobs,
        ledger=ledger,
        progress=progress,
        stall_after=stall_after,
    ).run(matrix)
    sweep_report.raise_errors()
    points_iter = iter(sweep_report.values())
    all_points: dict[str, list[SweepPoint]] = {}
    sections = ["E7 — measured message complexity of the real protocols"]
    for label, (_, grid) in grids.items():
        points = [next(points_iter) for _ in grid]
        all_points[label] = points
        fit = fit_sweep(points)
        sections.append(f"\n[{label}] {fit.render()}")
        sections.append(render_sweep(points))
    return ExperimentResult(
        experiment="E7",
        title="protocol complexity vs Dolev–Reischuk",
        report="\n".join(sections),
        data={"points": all_points, "sweep": sweep_report},
    )


def run_e8(n: int = 6, t: int = 2) -> ExperimentResult:
    """E8 — Corollary 1: external validity is bound by t²/32 too."""
    pool = ClientPool(clients=n)
    spec = external_validity_spec(
        n, t, validator=pool.validator(), fallback=pool.issue(0, "noop")
    )
    tx_a = [pool.issue(client, f"transfer-A-{client}") for client in range(n)]
    tx_b = [pool.issue(client, f"transfer-B-{client}") for client in range(n)]
    exec_a = spec.run(tx_a)
    exec_b = spec.run(tx_b)
    decision_a = exec_a.decision(0)
    decision_b = exec_b.decision(0)
    weak = reduce_weak_consensus_from_executions(spec, tx_a, tx_b)
    weak_zero = weak.run_uniform(0)
    weak_one = weak.run_uniform(1)
    floor = weak_consensus_floor(t)
    rows = [
        ("fully-correct run A decision", repr(decision_a)),
        ("fully-correct run B decision", repr(decision_b)),
        ("decisions differ (Corollary 1 hypothesis)",
         decision_a != decision_b),
        ("reduced weak consensus all-0 decisions",
         sorted(set(weak_zero.correct_decisions().values()))),
        ("reduced weak consensus all-1 decisions",
         sorted(set(weak_one.correct_decisions().values()))),
        ("measured messages (run A)", exec_a.message_complexity()),
        ("t^2/32 floor", f"{floor:.1f}"),
        ("meets floor", exec_a.message_complexity() >= floor),
    ]
    report = "\n".join(
        [
            "E8 — Corollary 1: external-validity agreement",
            render_kv("external validity on signed transactions",
                      rows),
        ]
    )
    return ExperimentResult(
        experiment="E8",
        title="External Validity under the bound (Corollary 1)",
        report=report,
        data={
            "decision_a": decision_a,
            "decision_b": decision_b,
            "messages": exec_a.message_complexity(),
            "floor": floor,
            "weak_zero": weak_zero,
            "weak_one": weak_one,
        },
    )


def run_e9(n: int = 10, t: int = 4, samples: int = 6) -> ExperimentResult:
    """E9/E10 — Lemmas 15 & 16: swap/merge validity at bench scale.

    The swap checks use a low-traffic protocol (the leader-echo cheater):
    Lemma 15's ``|F'| <= t`` precondition is exactly the message-count
    premise of the lower bound, and chatty protocols rightly blow the
    budget — the correct broadcast protocol exercises the merge checks
    instead.
    """
    spec = broadcast_weak_consensus_spec(n, t)
    sparse = leader_echo_spec(n, t)
    partition = canonical_partition(n, t)
    swap_checks = 0
    for k in range(1, samples + 1):
        isolated = sparse.run_uniform(
            0, isolate_group(partition.group_b, k)
        )
        for pid in sorted(partition.group_b):
            swap_omission_checked(isolated, pid)
            swap_checks += 1
    merge_checks = 0
    for k in range(1, samples):
        exec_b = spec.run_uniform(
            0, isolate_group(partition.group_b, k)
        )
        for delta in (-1, 0, 1):
            k_c = k + delta
            if k_c < 1:
                continue
            exec_c = spec.run_uniform(
                0, isolate_group(partition.group_c, k_c)
            )
            merge(
                MergeSpec(
                    group_b=partition.group_b,
                    group_c=partition.group_c,
                    round_b=k,
                    round_c=k_c,
                ),
                exec_b,
                exec_c,
                spec.factory,
            )
            merge_checks += 1
    report = "\n".join(
        [
            "E9/E10 — Lemma 15 (swap) and Lemma 16 (merge) checks",
            f"swap_omission_checked: {swap_checks} instances, all of "
            "Lemma 15's conclusions verified",
            f"merge: {merge_checks} mergeable pairs, all of Lemma 16's "
            "conclusions verified",
        ]
    )
    return ExperimentResult(
        experiment="E9",
        title="swap/merge construction validity (Lemmas 15-16)",
        report=report,
        data={"swap_checks": swap_checks, "merge_checks": merge_checks},
    )


ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
    "e9": run_e9,
}
"""Default-scale runners for every experiment, keyed by id."""
