#!/usr/bin/env python3
"""Check relative markdown links (files and heading anchors) for rot.

Scans the given markdown files — by default ``README.md``, ``DESIGN.md``,
``EXPERIMENTS.md``, ``ROADMAP.md`` and everything under ``docs/`` — and
verifies that every relative link target exists and that every fragment
(``#section-anchor``) matches a heading in the target file, using
GitHub's heading-slug rules.  External links (``http://``, ``https://``,
``mailto:``) are out of scope: they rot for reasons no repository test
can pin.

Exit codes: 0 all links resolve, 1 at least one dead link (each printed
as ``file:line: dead link ...``), 2 an input file is missing.

Usage::

    python tools/check_doc_links.py            # default file set
    python tools/check_doc_links.py README.md docs/SERVICE.md
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

# [text](target) — target captured up to the first unescaped ")".
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")
# GitHub slugging keeps word characters and hyphens; spaces become hyphens.
_SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)
_INLINE_MARKUP = re.compile(r"[*_`]|\[|\]\([^()\s]*\)")


def github_slug(heading: str) -> str:
    """Slugify a heading the way GitHub's anchor generator does.

    >>> github_slug("The wire protocol (`repro.service/v1`)")
    'the-wire-protocol-reproservicev1'
    >>> github_slug("Quotas, rate limits, priorities")
    'quotas-rate-limits-priorities'
    """
    text = _INLINE_MARKUP.sub("", heading)
    text = _SLUG_DROP.sub("", text.lower())
    return text.strip().replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """All anchor slugs defined by a markdown file's headings."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every markdown link in *path*."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """Return ``file:line: dead link`` diagnostics for one markdown file."""
    problems: list[str] = []
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    for line_number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, fragment = target.partition("#")
        dest = path if not raw_path else (path.parent / raw_path).resolve()
        if not dest.exists():
            problems.append(
                f"{rel}:{line_number}: dead link {target!r}: "
                f"no such file {raw_path!r}"
            )
            continue
        if not fragment:
            continue
        if dest.suffix.lower() not in (".md", ".markdown"):
            continue
        if dest not in anchor_cache:
            anchor_cache[dest] = heading_anchors(dest)
        if fragment.lower() not in anchor_cache[dest]:
            try:
                dest_rel = dest.relative_to(REPO_ROOT)
            except ValueError:
                dest_rel = dest
            problems.append(
                f"{rel}:{line_number}: dead link {target!r}: "
                f"no heading slug {fragment!r} in {dest_rel}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: README/DESIGN/EXPERIMENTS/"
        "ROADMAP + docs/*.md)",
    )
    args = parser.parse_args(argv)

    if args.files:
        files = [Path(name).resolve() for name in args.files]
    else:
        files = [
            REPO_ROOT / name
            for name in DEFAULT_FILES
            if (REPO_ROOT / name).exists()
        ]
        files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))

    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file: {path}", file=sys.stderr)
        return 2

    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, anchor_cache))

    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(
            f"{len(problems)} dead link(s) across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"all links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
