#!/usr/bin/env python3
"""State machine replication on top of repeated Byzantine agreement.

The paper's introduction motivates Byzantine agreement as the heart of
state machine replication [32, 76, 100]; this example closes that loop:
a replicated key-value log is built as a sequence of strong-consensus
slots, and it stays consistent while one replica plays two-faced and
another crashes mid-run.  Each slot is a fresh synchronous execution of
the authenticated IC-based strong consensus, so every slot also pays the
Ω(t²) toll the paper proves unavoidable — the running total is printed
against the per-slot floor.

Run with: ``python examples/state_machine_replication.py``
"""

from repro.lowerbound import weak_consensus_floor
from repro.protocols import (
    authenticated_strong_consensus_spec,
    two_faced,
)
from repro.sim import ByzantineAdversary, CrashAdversary


def replicate_log(n: int, t: int, commands_per_replica, adversaries):
    """Run one consensus slot per command batch; return per-replica logs.

    Args:
        commands_per_replica: for each slot, a list of n proposals (what
            each replica would like to commit next).
        adversaries: per-slot adversary (or None).
    """
    logs: dict[int, list] = {pid: [] for pid in range(n)}
    total_messages = 0
    for slot, (proposals, adversary) in enumerate(
        zip(commands_per_replica, adversaries)
    ):
        spec = authenticated_strong_consensus_spec(
            n, t, seed=f"smr-slot-{slot}".encode()
        )
        execution = spec.run(proposals, adversary)
        total_messages += execution.message_complexity()
        for pid in execution.correct:
            logs[pid].append(execution.decision(pid))
    return logs, total_messages


def main() -> None:
    n, t = 5, 2
    slots = [
        [f"set x={value}" for _ in range(n)]
        for value in (1, 2, 3)
    ] + [
        # Slot 4: one correct replica dissents and one replica is
        # two-faced; the correct majority's command must still win.
        ["set y=A", "set y=A", "set y=A", "set y=B", "set y=A"],
    ]
    adversaries = [
        None,
        ByzantineAdversary({4}, {4: two_faced("set x=2", "EVIL")}),
        CrashAdversary({3: 1}),
        ByzantineAdversary({4}, {4: two_faced("set y=A", "set y=B")}),
    ]

    logs, total_messages = replicate_log(n, t, slots, adversaries)

    print("=== replicated logs (correct replicas of the last slot) ===")
    for pid in (0, 1, 2):
        rendered = " | ".join(str(entry) for entry in logs[pid])
        print(f"  replica {pid}: {rendered}")

    reference = logs[0]
    for pid in (1, 2):
        assert logs[pid][: len(reference)] == reference[: len(logs[pid])]
    print("logs are prefix-consistent across correct replicas")
    print()

    print("=== unanimity slots committed the unanimous command ===")
    for slot in range(3):
        assert reference[slot] == f"set x={slot + 1}"
    assert reference[3] == "set y=A"
    print("slots 1-3 committed 'set x=1..3' despite the attacks;")
    print("slot 4 committed the correct majority's 'set y=A'")
    print()

    floor = weak_consensus_floor(t)
    print("=== the toll (Theorem 3, per slot) ===")
    print(
        f"{len(slots)} slots cost {total_messages} messages "
        f"(>= {len(slots)} x t^2/32 = {len(slots) * floor:.1f}); "
        "every slot is a non-trivial agreement instance, so the paper "
        "says none of them could have been sub-quadratic."
    )
    assert total_messages >= len(slots) * floor


if __name__ == "__main__":
    main()
