#!/usr/bin/env python3
"""Hands-on with the paper's execution model (Appendix A).

The formalism — fragments, behaviors, executions, the five execution
guarantees — is not just notation here: it is a data structure with a
mechanical checker.  This example:

1. records an execution of Phase King under a crash fault and inspects
   its fragments;
2. tampers with the trace (erases a receipt) and watches the checker
   reject it;
3. re-runs a state machine against a recorded behavior (the determinism
   contract, behavior condition 7);
4. performs an omission swap by hand and confirms nobody can tell
   (Lemma 15's indistinguishability).

Run with: ``python examples/model_playground.py``
"""

from repro.errors import ModelViolation
from repro.omission import (
    indistinguishable_to_all,
    isolate_group,
    swap_omission_checked,
)
from repro.protocols import leader_echo_spec, phase_king_spec
from repro.sim import (
    Behavior,
    CrashAdversary,
    Execution,
    check_execution,
    check_transitions,
    drive_replay,
)


def inspect_a_trace() -> None:
    print("=== 1. a recorded execution, fragment by fragment ===")
    spec = phase_king_spec(4, 1)
    execution = spec.run([0, 1, 1, 0], CrashAdversary({3: 2}))
    print(f"faulty: {sorted(execution.faulty)}, "
          f"rounds: {execution.rounds}, "
          f"messages (correct senders): {execution.message_complexity()}")
    behavior = execution.behavior(3)
    for round_ in range(1, 4):
        fragment = behavior.fragment(round_)
        print(
            f"  p3 round {round_}: sent={len(fragment.sent)} "
            f"send-omitted={len(fragment.send_omitted)} "
            f"received={len(fragment.received)} "
            f"receive-omitted={len(fragment.receive_omitted)}"
        )
    print("the crash shows up as pure omissions — the machine itself "
          "never misbehaves")
    print()


def tamper_and_get_caught() -> None:
    print("=== 2. the checker rejects tampered traces ===")
    spec = phase_king_spec(4, 1)
    execution = spec.run([0, 1, 1, 0])
    check_execution(execution)
    print("genuine trace: all five A.1.6 guarantees hold")

    behavior = execution.behavior(1)
    first = behavior.fragment(1)
    erased = first.replacing(
        received=frozenset(
            message
            for message in first.received
            if message.sender != 2
        )
    )
    fragments = (erased,) + behavior.fragments[1:]
    tampered = Execution(
        n=4,
        t=1,
        faulty=execution.faulty,
        behaviors=tuple(
            Behavior(fragments, final_state=behavior.final_state)
            if pid == 1
            else execution.behavior(pid)
            for pid in range(4)
        ),
    )
    try:
        check_execution(tampered)
    except ModelViolation as error:
        print(f"tampered trace rejected: {error}")
    print()


def determinism_contract() -> None:
    print("=== 3. behaviors replay exactly (condition 7) ===")
    spec = phase_king_spec(4, 1)
    execution = spec.run([0, 1, 1, 0], CrashAdversary({2: 3}))
    check_transitions(execution, spec.factory)
    machine = spec.factory(2, 1)
    drive_replay(machine, execution.behavior(2))
    print("every recorded behavior — including the faulty one — is an "
          "honest run of the state machine under some omission pattern")
    print()


def swap_by_hand() -> None:
    print("=== 4. the omission swap (Algorithm 4 / Lemma 15) ===")
    spec = leader_echo_spec(8, 4)
    isolated = spec.run_uniform(0, isolate_group({7}, 1))
    print(f"before: faulty={sorted(isolated.faulty)}, "
          f"p7 decided {isolated.decision(7)}, "
          f"p1 decided {isolated.decision(1)}")
    result = swap_omission_checked(isolated, 7)
    swapped = result.execution
    print(f"after:  faulty={sorted(swapped.faulty)}, "
          f"p7 decided {swapped.decision(7)}, "
          f"p1 decided {swapped.decision(1)}")
    assert indistinguishable_to_all(isolated, swapped)
    print("indistinguishable to every process — yet now two CORRECT "
          "processes disagree. That is the lower bound's killing move.")


if __name__ == "__main__":
    inspect_a_trace()
    tamper_and_get_caught()
    determinism_contract()
    swap_by_hand()
