#!/usr/bin/env python3
"""Blockchain-style agreement with External Validity (§4.3, Corollary 1).

Validators must agree on a *correctly signed* client transaction.  The
scenario the paper's §4.3 motivates:

* clients sign transactions; ``valid(·)`` is signature verification;
* a Byzantine validator pushes a *forged* transaction — it must never be
  decided;
* the protocol has two fully-correct executions deciding different
  transactions, so Corollary 1 applies: the Algorithm-1 reduction turns
  it into weak consensus for free, and the ``t²/32`` floor binds.

Run with: ``python examples/blockchain_agreement.py``
"""

from repro.lowerbound import weak_consensus_floor
from repro.sim import ByzantineAdversary
from repro.protocols import (
    ClientPool,
    external_validity_spec,
    garbage,
)
from repro.reductions import reduce_weak_consensus_from_executions


def main() -> None:
    n, t = 6, 2
    pool = ClientPool(clients=n)
    valid = pool.validator()
    spec = external_validity_spec(
        n, t, validator=valid, fallback=pool.issue(0, "noop")
    )

    print("=== validators agree on a signed transaction ===")
    txs = [pool.issue(client, f"transfer #{client}") for client in range(n)]
    execution = spec.run(txs)
    decided = execution.decision(0)
    print(f"decided: client {decided.client}, body {decided.body!r}")
    assert valid(decided)
    print("decision passes the global validity predicate")
    print()

    print("=== a forging leader is skipped ===")
    forged = list(txs)
    forged[0] = pool.forge(0, "mint myself 1e9 coins")
    execution = spec.run(forged)
    decided = execution.decision(1)
    print(f"leader 0 proposed a forgery; decided instead: "
          f"client {decided.client}, body {decided.body!r}")
    assert valid(decided)
    assert decided != forged[0]
    print()

    print("=== a garbage-spewing Byzantine validator changes nothing ===")
    adversary = ByzantineAdversary({3}, {3: garbage()})
    execution = spec.run(txs, adversary)
    decisions = {
        execution.decision(pid) for pid in execution.correct
    }
    assert len(decisions) == 1
    decided = decisions.pop()
    assert valid(decided)
    print(f"all correct validators decided client {decided.client}'s "
          "transaction")
    print()

    print("=== Corollary 1: the bound applies to this algorithm ===")
    workload_a = [pool.issue(client, "block-A") for client in range(n)]
    workload_b = [pool.issue(client, "block-B") for client in range(n)]
    decision_a = spec.run(workload_a).decision(0)
    decision_b = spec.run(workload_b).decision(0)
    print(f"fully-correct run A decides body {decision_a.body!r}")
    print(f"fully-correct run B decides body {decision_b.body!r}")
    assert decision_a != decision_b

    weak = reduce_weak_consensus_from_executions(
        spec, workload_a, workload_b
    )
    zero = weak.run_uniform(0)
    one = weak.run_uniform(1)
    assert set(zero.correct_decisions().values()) == {0}
    assert set(one.correct_decisions().values()) == {1}
    print("Algorithm 1 turned it into weak consensus with zero extra "
          "messages:")
    print(f"  outer messages = {zero.message_complexity()}, "
          f"floor t^2/32 = {weak_consensus_floor(t):.1f}")
    print("hence this blockchain agreement cannot dodge the Ω(t²) bound.")


if __name__ == "__main__":
    main()
