#!/usr/bin/env python3
"""Quickstart: run a Byzantine agreement protocol, then break a cheat.

Three things in two minutes:

1. Run Dolev–Strong broadcast among 7 processes with an *equivocating*
   Byzantine sender and watch agreement hold anyway.
2. Take a "too cheap to be true" weak consensus protocol and let the
   paper's lower-bound machinery construct a concrete execution that
   breaks it.
3. Check the numbers against the paper's ``t²/32`` floor.

Run with: ``python examples/quickstart.py``
"""

from repro.lowerbound import attack_weak_consensus, weak_consensus_floor
from repro.sim import ByzantineAdversary
from repro.protocols import (
    dolev_strong_spec,
    equivocating_sender,
    leader_echo_spec,
    scheme_for_spec,
)
from repro.sim import ExecutionSummary


def broadcast_with_equivocation() -> None:
    """Dolev–Strong vs a sender that signs two different values."""
    n, t = 7, 2
    spec = dolev_strong_spec(n, t)
    scheme = scheme_for_spec(n)
    adversary = ByzantineAdversary(
        {0},
        {0: equivocating_sender(scheme, "PAY-ALICE", "PAY-BOB")},
    )
    execution = spec.run(["PAY-ALICE"] + [None] * (n - 1), adversary)

    print("=== Dolev–Strong broadcast under an equivocating sender ===")
    print(ExecutionSummary.of(execution).render())
    decisions = set(execution.correct_decisions().values())
    assert len(decisions) == 1, "agreement must hold"
    print(f"all correct processes decided: {decisions.pop()!r}")
    print()


def break_a_cheap_protocol() -> None:
    """The Theorem-2 pipeline vs an O(n)-message weak consensus."""
    n, t = 16, 8
    spec = leader_echo_spec(n, t)
    outcome = attack_weak_consensus(spec)

    print("=== Lower-bound attack on the leader-echo cheater ===")
    print(outcome.render())
    assert outcome.found_violation
    witness = outcome.witness
    print()
    print("the violating execution (a genuine run of the protocol with")
    print(f"only {len(witness.execution.faulty)} omission-faulty "
          f"processes, budget t={t}):")
    print(ExecutionSummary.of(witness.execution).render())
    print()


def compare_against_the_floor() -> None:
    """Correct protocols pay; cheaters do not (and are broken for it)."""
    from repro.protocols import broadcast_weak_consensus_spec

    t = 96  # large enough for the floor to dwarf an O(n) protocol
    n = t + 4
    correct = broadcast_weak_consensus_spec(n, t)
    cheap = leader_echo_spec(n, t)
    floor = weak_consensus_floor(t)

    print("=== The t²/32 floor (Lemma 1) ===")
    print(f"floor at t={t}: {floor:.1f} messages")
    for spec in (correct, cheap):
        messages = spec.run_uniform(0).message_complexity()
        verdict = "pays the price" if messages >= floor else "cheats"
        print(f"  {spec.name}: {messages} messages -> {verdict}")


if __name__ == "__main__":
    broadcast_with_equivocation()
    break_a_cheap_protocol()
    compare_against_the_floor()
