#!/usr/bin/env python3
"""A guided walk through the Ω(t²) lower-bound proof — executed live.

Follows §3 of the paper step by step against the *ring-token* cheater, a
sub-quadratic weak consensus whose behaviour under isolation genuinely
depends on the isolation round, so every stage of the argument fires:

1. the fully correct executions ``E_0`` / ``E_1`` (Weak Validity);
2. the four round-1 isolations and the Lemma-3 default bit ``d``;
3. the Lemma-4 interpolation to the critical round ``R``;
4. the Lemma-2 swap construction that "launders" a faulty deviant into a
   correct one, handing us two correct processes that disagree;
5. independent re-verification of the violation witness.

Run with: ``python examples/lower_bound_walkthrough.py``
"""

from repro.lowerbound import (
    attack_weak_consensus,
    canonical_partition,
    verify_witness,
    weak_consensus_floor,
)
from repro.omission import isolate_group
from repro.protocols import ring_token_spec
from repro.sim import ExecutionSummary


def main() -> None:
    n, t = 16, 8
    spec = ring_token_spec(n, t)
    partition = canonical_partition(n, t)

    print(f"protocol: {spec.name}, n={n}, t={t}")
    print(f"partition: {partition.describe()}")
    print(f"Lemma-1 floor: t^2/32 = {weak_consensus_floor(t):.1f}")
    print()

    print("--- step 1: fault-free executions (Weak Validity) ---")
    for bit in (0, 1):
        execution = spec.run_uniform(bit)
        print(f"E_{bit}: {ExecutionSummary.of(execution).render()}")
    print()

    print("--- step 2: what isolation does to the decision ---")
    for k in (1, 6, 10, 13, n):
        execution = spec.run_uniform(
            0, isolate_group(partition.group_b, k)
        )
        a_decision = execution.decision(0)
        print(
            f"E_0^{{B({k:>2})}}: group A decides {a_decision} "
            f"(msgs={execution.message_complexity()})"
        )
    print()

    print("--- steps 3-5: the full pipeline ---")
    outcome = attack_weak_consensus(spec)
    for line in outcome.log:
        print(f"  {line}")
    print()
    print(outcome.render())
    print()

    print("--- Figure 2: a merged execution, rendered ---")
    from repro.analysis import render_spacetime
    from repro.omission import MergeSpec, merge

    # The driver found the decision flip between B(12) and B(13); build
    # the paper's merged execution E_0^{B(13), C(12)} explicitly.
    k_b, k_c = 13, 12
    exec_b = spec.run_uniform(0, isolate_group(partition.group_b, k_b))
    exec_c = spec.run_uniform(0, isolate_group(partition.group_c, k_c))
    merged = merge(
        MergeSpec(
            group_b=partition.group_b,
            group_c=partition.group_c,
            round_b=k_b,
            round_c=k_c,
        ),
        exec_b,
        exec_c,
        spec.factory,
    )
    print(render_spacetime(merged, max_rounds=n))
    print(
        f"group A decides {merged.decision(0)}, B-members "
        f"{[merged.decision(pid) for pid in sorted(partition.group_b)]},"
        f" C-members "
        f"{[merged.decision(pid) for pid in sorted(partition.group_c)]}."
    )
    print("(For this cheater the contradiction already fires inside")
    print(" E_0^{B(13)} itself — Lemma 2's majority check — so the")
    print(" driver never needed this merge; it is shown to exhibit the")
    print(" Figure-2 construction: both groups isolated one round")
    print(" apart, each replaying its own execution, group A live.)")
    print()

    witness = outcome.witness
    assert witness is not None
    print("--- the violation witness, re-verified from scratch ---")
    verify_witness(witness, spec.factory)
    execution = witness.execution
    from repro.analysis import render_execution

    print(render_execution(execution, max_rounds=6))
    print("  ... (full horizon in the witness record)")
    print(f"faulty set ({len(execution.faulty)} <= t={t}): "
          f"{sorted(execution.faulty)}")
    print(f"correct p{witness.culprit} decided "
          f"{execution.decision(witness.culprit)!r}")
    print(f"correct p{witness.counterpart} decided "
          f"{execution.decision(witness.counterpart)!r}")
    print("both are genuine runs of the protocol's own state machine —")
    print("the cheat is refuted by its own code.")


if __name__ == "__main__":
    main()
