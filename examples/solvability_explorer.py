#!/usr/bin/env python3
"""Explore the landscape of solvable agreement problems (Theorem 4/5).

* classify every standard validity property on a small system;
* sweep the (n, t) grid for strong consensus and draw Theorem 5's
  ``n > 2t`` boundary;
* design a *custom* validity property, decide its solvability, and —
  when the containment condition holds — actually solve it with
  Algorithm 2 over interactive consistency, under a Byzantine fault.

Run with: ``python examples/solvability_explorer.py``
"""

from repro.analysis import render_table
from repro.sim import ByzantineAdversary
from repro.protocols import two_faced
from repro.reductions import solve_via_ic
from repro.solvability import classify, strong_consensus_cc
from repro.validity import (
    AgreementProblem,
    InputConfig,
    byzantine_broadcast_problem,
    correct_proposal_problem,
    interactive_consistency_problem,
    strong_consensus_problem,
    weak_consensus_problem,
)


def classify_standard_problems() -> None:
    n, t = 4, 1
    print(f"=== Theorem 4 classification at n={n}, t={t} ===")
    for builder in (
        weak_consensus_problem,
        strong_consensus_problem,
        byzantine_broadcast_problem,
        interactive_consistency_problem,
        correct_proposal_problem,
    ):
        print(classify(builder(n, t)).render())
    print()


def theorem5_boundary() -> None:
    print("=== Theorem 5: strong consensus needs n > 2t ===")
    ns = range(3, 8)
    ts = range(1, 4)
    rows = []
    for n in ns:
        cells = []
        for t in ts:
            if t >= n:
                cells.append("-")
            else:
                cells.append(
                    "solvable" if strong_consensus_cc(n, t) else "NO"
                )
        rows.append((n, *cells))
    print(
        render_table(
            ("n \\ t", *(str(t) for t in ts)), rows
        )
    )
    print("(the 'NO' region is exactly n <= 2t)")
    print()


def median_validity(n: int, t: int) -> AgreementProblem:
    """A custom property: decide a value between the correct extremes.

    With proposals from {0, 1, 2}, the decision must lie within
    ``[min, max]`` of the correct proposals — an approximate-agreement
    flavoured validity that is easy to state and not obviously solvable.
    """
    domain = (0, 1, 2)

    def validity(config: InputConfig) -> frozenset:
        proposals = config.proposals_multiset()
        low, high = min(proposals), max(proposals)
        return frozenset(v for v in domain if low <= v <= high)

    return AgreementProblem(
        name="between-correct-extremes",
        n=n,
        t=t,
        input_values=domain,
        output_values=domain,
        validity=validity,
    )


def custom_property() -> None:
    n, t = 4, 1
    problem = median_validity(n, t)
    report = classify(problem)
    print("=== a custom validity property ===")
    print(report.render())
    if not report.cc.holds:
        print("containment condition fails; unsolvable (Theorem 4)")
        return
    spec = solve_via_ic(problem, authenticated=True)
    adversary = ByzantineAdversary({3}, {3: two_faced(0, 2)})
    execution = spec.run([2, 1, 2, 0], adversary)
    decisions = {
        execution.decision(pid) for pid in execution.correct
    }
    assert len(decisions) == 1
    decided = decisions.pop()
    print(f"Algorithm 2 solved it under a two-faced Byzantine process: "
          f"decided {decided}")
    correct_proposals = [2, 1, 2]
    assert min(correct_proposals) <= decided <= max(correct_proposals)
    print("decision lies between the correct extremes, as required")


if __name__ == "__main__":
    classify_standard_problems()
    theorem5_boundary()
    custom_property()
