"""Setup shim: the environment lacks the `wheel` package, which PEP 660
editable installs require; `python setup.py develop` (used by
`pip install -e . --no-build-isolation` on fallback, or directly) does not.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
